"""Fleet layer: many independent swarms as one sharded, resumable workload.

The paper's Theorem 1 answers the stability question *per swarm*; a
production tracker serves *fleets* of concurrent swarms whose parameters are
drawn from a population.  This subsystem turns the scenario registry and the
dual-kernel runner into a phase-diagram machine:

* :mod:`repro.fleet.spec` — :class:`FleetSpec` (swarm count + a parameter
  sampler + a weighted scenario mix + run controls) and the deterministic
  per-swarm task materialization;
* :mod:`repro.fleet.scheduler` — :class:`FleetScheduler` /
  :func:`run_fleet` / :func:`resume_fleet`: chunked ``multiprocessing``
  sharding with results independent of the worker count, streaming
  aggregation, and offset checkpoint/resume (including mid-swarm kernel
  snapshots);
* :mod:`repro.fleet.adaptive` — :class:`AdaptiveFleetDriver` /
  :func:`run_adaptive_fleet`: budget-driven active sampling of
  ``(λ, U_s, scenario)`` candidates by Beta-posterior uncertainty, with a
  boundary-stability stopping rule, same determinism and resume contract;
* :mod:`repro.fleet.persistence` — the streaming JSONL fleet log (one
  schema-versioned, CRC32-checksummed record per completed swarm, fsync'd
  batches, live ``tail -f``, segment rotation and census compaction,
  salvage-mode reads, :meth:`FleetResult.from_log` reconstruction);
* :mod:`repro.fleet.result` — :class:`FleetSwarmRecord` and the incremental
  :class:`FleetResult` census (one-club prevalence, sojourn/download
  distributions, Theorem-1-vs-outcome confusion counts, per-scenario
  breakdown, ``failed`` records from exhausted retries);
* :mod:`repro.fleet.checkpoint` — the crash-atomic pickle checkpoint format
  (a ``(segment, byte offset)`` pointer into the JSONL log + the in-flight
  kernel snapshot, with a ``.bak`` fallback copy);
* :mod:`repro.fleet.faults` — the deterministic fault-injection harness
  (:class:`FaultPlan`): planned worker crashes, task errors, torn appends,
  failed fsyncs, corrupted checkpoints and SIGKILL points for chaos tests.

The fleet-level experiments (uniform and adaptive capture phase diagrams
over the Theorem-1 boundary) live in :mod:`repro.experiments.fleet`.
"""

from .adaptive import (
    AdaptiveFleetDriver,
    AdaptiveFleetResult,
    AdaptiveFleetSpec,
    CaptureGrid,
    CellKey,
    RoundSummary,
    beta_mean_variance,
    resume_adaptive_fleet,
    run_adaptive_fleet,
)
from .checkpoint import (
    FleetCheckpoint,
    default_log_path,
    load_checkpoint,
    save_checkpoint,
)
from .faults import (
    FaultPlan,
    InjectedCheckpointCrash,
    InjectedFault,
    InjectedFsyncFailure,
    InjectedTaskError,
    InjectedTornWrite,
    InjectedWorkerCrash,
    WORKER_CRASH_EXIT_CODE,
)
from .persistence import (
    FLEET_LOG_SCHEMA,
    FleetLog,
    FleetLogError,
    FleetLogHeader,
    FleetLogWriter,
    compact_log,
    read_log,
    tail_summary,
)
from .result import (
    FleetResult,
    FleetSwarmRecord,
    failure_record,
    record_from_result,
    theory_verdict,
)
from .scheduler import FleetScheduler, resume_fleet, run_fleet
from .spec import (
    FixedSampler,
    FleetSpec,
    GridSampler,
    PLAIN_LABEL,
    ParameterSampler,
    RandomSampler,
    SAMPLABLE_FIELDS,
    ScenarioWeight,
    SwarmTask,
    materialize_tasks,
    normalize_fleet_seed,
    task_for_point,
)

__all__ = [
    "AdaptiveFleetDriver",
    "AdaptiveFleetResult",
    "AdaptiveFleetSpec",
    "CaptureGrid",
    "CellKey",
    "FLEET_LOG_SCHEMA",
    "FaultPlan",
    "FixedSampler",
    "FleetCheckpoint",
    "FleetLog",
    "FleetLogError",
    "FleetLogHeader",
    "FleetLogWriter",
    "FleetResult",
    "FleetScheduler",
    "FleetSpec",
    "FleetSwarmRecord",
    "GridSampler",
    "InjectedCheckpointCrash",
    "InjectedFault",
    "InjectedFsyncFailure",
    "InjectedTaskError",
    "InjectedTornWrite",
    "InjectedWorkerCrash",
    "PLAIN_LABEL",
    "ParameterSampler",
    "RandomSampler",
    "RoundSummary",
    "SAMPLABLE_FIELDS",
    "ScenarioWeight",
    "SwarmTask",
    "WORKER_CRASH_EXIT_CODE",
    "beta_mean_variance",
    "compact_log",
    "default_log_path",
    "failure_record",
    "load_checkpoint",
    "materialize_tasks",
    "normalize_fleet_seed",
    "read_log",
    "record_from_result",
    "resume_adaptive_fleet",
    "resume_fleet",
    "run_adaptive_fleet",
    "run_fleet",
    "save_checkpoint",
    "tail_summary",
    "task_for_point",
    "theory_verdict",
]
