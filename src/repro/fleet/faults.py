"""Deterministic fault injection for the fleet execution stack.

Robustness claims are only as good as the failures they were tested
against, so the fleet layer carries its own chaos harness: a frozen,
seeded :class:`FaultPlan` that injects failures at *planned*, reproducible
points —

* **worker crashes** — the process running a planned swarm dies with
  ``os._exit`` mid-task (no exception, no cleanup), exactly like an OOM
  kill, exercising dead-worker detection in
  :func:`repro.experiments.runner.map_tasks`;
* **task errors** — a planned swarm raises on its first attempt,
  exercising the retry path;
* **poison tasks** — a planned swarm raises on *every* attempt,
  exercising quarantine and the ``failed``-record degradation path;
* **stalls** — a planned swarm sleeps past any reasonable deadline on its
  first attempt (worker processes only), exercising the per-task timeout;
* **torn appends** — the log writer emits half a record line and raises,
  leaving exactly the truncated-tail shape a crash mid-``write`` leaves;
* **failed fsyncs** — the writer raises in place of ``os.fsync`` once a
  planned number of records has been appended;
* **corrupted / crashed checkpoints** — a planned checkpoint write either
  flips bytes in the finished file (bit rot) or dies after a partial temp
  file (crash mid-checkpoint);
* **kill points** — the process SIGKILLs *itself* right after a planned
  record is durably appended, for real-crash subprocess tests.

The plan is plain frozen data (picklable, so it crosses process
boundaries with the chunk jobs) and the default everywhere is ``None`` —
production paths never construct, consult, or pay for any of this.
Task-level faults are stateless functions of ``(swarm index, attempt)``,
so a retried task deterministically succeeds (or keeps failing, for
poison tasks) at any worker count; writer-side faults fire at most once
per process lifetime, tracked by the mutable :class:`FaultState` the
writer owns.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

#: Exit status of an injected worker crash (``os._exit``); distinctive so
#: tests can tell an injected death from a genuine one.
WORKER_CRASH_EXIT_CODE = 173


class InjectedFault(RuntimeError):
    """Base class of every failure raised by the fault harness."""


class InjectedWorkerCrash(InjectedFault):
    """A planned worker crash fired in-process (no worker to ``os._exit``)."""


class InjectedTaskError(InjectedFault):
    """A planned task exception (one-shot or poison)."""


class InjectedTornWrite(InjectedFault):
    """The log writer died mid-append, leaving a truncated tail line."""


class InjectedFsyncFailure(InjectedFault):
    """A planned fsync failure (disk gone read-only, quota hit, ...)."""


class InjectedCheckpointCrash(InjectedFault):
    """A planned crash mid-checkpoint-write (partial temp file left behind)."""


def _in_worker_process() -> bool:
    return multiprocessing.current_process().name != "MainProcess"


@dataclass(frozen=True)
class FaultPlan:
    """A frozen schedule of injected failures (all fields default to none).

    ``worker_crashes`` / ``task_errors`` / ``stall_tasks`` name swarm
    indices and fire on attempt 0 only — the retry reproduces the exact
    record because per-swarm seeds are independent ``SeedSequence.spawn``
    children.  ``poison_tasks`` fire on every attempt.  ``torn_appends``
    and ``kill_points`` name *record* indices at the log writer;
    ``failed_fsyncs`` name appended-record counts; the checkpoint faults
    name checkpoint-write ordinals (0 is the initial checkpoint of a
    fresh run).
    """

    worker_crashes: Tuple[int, ...] = ()
    task_errors: Tuple[int, ...] = ()
    poison_tasks: Tuple[int, ...] = ()
    stall_tasks: Tuple[int, ...] = ()
    stall_seconds: float = 30.0
    torn_appends: Tuple[int, ...] = ()
    failed_fsyncs: Tuple[int, ...] = ()
    corrupt_checkpoints: Tuple[int, ...] = ()
    checkpoint_crashes: Tuple[int, ...] = ()
    kill_points: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for spec in fields(self):
            if spec.name == "stall_seconds":
                continue
            values = getattr(self, spec.name)
            normalized = tuple(sorted(int(value) for value in values))
            if any(value < 0 for value in normalized):
                raise ValueError(
                    f"FaultPlan.{spec.name} entries must be >= 0: {values}"
                )
            object.__setattr__(self, spec.name, normalized)
        if self.stall_seconds <= 0:
            raise ValueError(
                f"stall_seconds must be positive, got {self.stall_seconds}"
            )

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not any(
            getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "stall_seconds"
        )

    @classmethod
    def plan(
        cls,
        seed: int,
        num_tasks: int,
        *,
        worker_crashes: int = 0,
        task_errors: int = 0,
        poison_tasks: int = 0,
        stall_tasks: int = 0,
        torn_appends: int = 0,
        failed_fsyncs: int = 0,
        corrupt_checkpoints: int = 0,
        checkpoint_crashes: int = 0,
        kill_points: int = 0,
    ) -> "FaultPlan":
        """Draw a deterministic plan of the requested fault counts.

        Task/record indices are sampled without replacement from
        ``range(num_tasks)``; checkpoint ordinals from ``range(1,
        num_tasks + 1)`` (never the initial checkpoint, which has no
        predecessor to fall back to).  The same ``(seed, num_tasks,
        counts)`` always yields the same plan.
        """
        rng = np.random.default_rng(seed)

        def pick(count: int, low: int, high: int) -> Tuple[int, ...]:
            span = max(high - low, 0)
            count = min(count, span)
            if count <= 0:
                return ()
            drawn = rng.choice(span, size=count, replace=False)
            return tuple(sorted(int(value) + low for value in drawn))

        return cls(
            worker_crashes=pick(worker_crashes, 0, num_tasks),
            task_errors=pick(task_errors, 0, num_tasks),
            poison_tasks=pick(poison_tasks, 0, num_tasks),
            stall_tasks=pick(stall_tasks, 0, num_tasks),
            torn_appends=pick(torn_appends, 0, num_tasks),
            failed_fsyncs=pick(failed_fsyncs, 1, num_tasks + 1),
            corrupt_checkpoints=pick(corrupt_checkpoints, 1, num_tasks + 1),
            checkpoint_crashes=pick(checkpoint_crashes, 1, num_tasks + 1),
            kill_points=pick(kill_points, 0, num_tasks),
        )


def fire_task_faults(
    plan: Optional[FaultPlan], index: int, attempt: int
) -> None:
    """Fire any task-level fault planned for ``(swarm index, attempt)``.

    Called at the top of every swarm-task execution.  Stateless: the same
    arguments always produce the same outcome, so a task retried anywhere
    (another worker, the in-process quarantine loop, a resumed run)
    behaves identically.  ``plan=None`` is free.
    """
    if plan is None:
        return
    if index in plan.poison_tasks:
        raise InjectedTaskError(
            f"injected poison failure for swarm {index} (attempt {attempt})"
        )
    if attempt > 0:
        return
    if index in plan.worker_crashes:
        if _in_worker_process():
            os._exit(WORKER_CRASH_EXIT_CODE)
        raise InjectedWorkerCrash(
            f"injected worker crash at swarm {index} (in-process stand-in)"
        )
    if index in plan.task_errors:
        raise InjectedTaskError(f"injected task error at swarm {index}")
    if index in plan.stall_tasks and _in_worker_process():
        # Stalls only make sense where a supervisor can time the worker
        # out; in-process there is nobody to interrupt the sleep.
        time.sleep(plan.stall_seconds)


class FaultState:
    """Once-only bookkeeping for the writer-side faults of one process.

    Torn appends, failed fsyncs, kill points and checkpoint faults each
    fire at most once per key per process lifetime — a resumed process
    starts fresh, which is exactly the semantics of a transient disk
    fault.  The state is deliberately *not* persisted anywhere.
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan if plan is not None else FaultPlan()
        self._fired: set = set()
        self._checkpoints = 0

    def _take(self, kind: str, key: int) -> bool:
        if key in getattr(self.plan, kind) and (kind, key) not in self._fired:
            self._fired.add((kind, key))
            return True
        return False

    def take_torn_append(self, record_index: int) -> bool:
        return self._take("torn_appends", record_index)

    def take_kill_point(self, record_index: int) -> bool:
        return self._take("kill_points", record_index)

    def take_failed_fsync(self, total_records: int) -> bool:
        for key in self.plan.failed_fsyncs:
            if key <= total_records and ("failed_fsyncs", key) not in self._fired:
                self._fired.add(("failed_fsyncs", key))
                return True
        return False

    def next_checkpoint_ordinal(self) -> int:
        ordinal = self._checkpoints
        self._checkpoints += 1
        return ordinal

    def take_corrupt_checkpoint(self, ordinal: int) -> bool:
        return self._take("corrupt_checkpoints", ordinal)

    def take_checkpoint_crash(self, ordinal: int) -> bool:
        return self._take("checkpoint_crashes", ordinal)


def corrupt_file_bytes(path: Union[str, Path]) -> None:
    """Flip a run of bytes in the middle of ``path`` (injected bit rot)."""
    target = Path(path)
    data = bytearray(target.read_bytes())
    if not data:
        return
    middle = len(data) // 2
    for position in range(middle, min(middle + 8, len(data))):
        data[position] ^= 0xFF
    target.write_bytes(data)


def kill_self() -> None:
    """SIGKILL the current process — the real, unhandleable ``kill -9``."""
    os.kill(os.getpid(), signal.SIGKILL)


__all__ = [
    "FaultPlan",
    "FaultState",
    "InjectedCheckpointCrash",
    "InjectedFault",
    "InjectedFsyncFailure",
    "InjectedTaskError",
    "InjectedTornWrite",
    "InjectedWorkerCrash",
    "WORKER_CRASH_EXIT_CODE",
    "corrupt_file_bytes",
    "fire_task_faults",
    "kill_self",
]
