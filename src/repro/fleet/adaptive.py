"""Adaptive fleet driver: budget-driven boundary mapping by active sampling.

The uniform :func:`~repro.experiments.fleet.run_fleet_phase_diagram` spends
its swarm budget evenly over the ``(λ, U_s)`` grid — mostly far from the
Theorem-1 boundary it is trying to localize.  This module replaces the fixed
swarm count with a *stopping rule*:

1. every candidate point ``(λ, U_s, scenario)`` (the cartesian grid of
   arrival rates × seed rates × scenario-mix strata) carries a
   Beta(1 + captures, 1 + misses) posterior over its capture probability;
2. each **round** allocates ``round_size`` swarms to candidates by a
   deterministic divisor apportionment over acquisition scores — posterior
   variance, boosted for cells on the current empirical boundary (posterior
   mean inside ``boundary_band`` or a 4-neighbour straddling 0.5) — so
   effort concentrates where the capture estimate is still uncertain;
3. sampling stops when the boundary estimate stabilises (the boundary cell
   set is unchanged and its mean posterior variance is below
   ``variance_tol`` for ``patience`` consecutive rounds) or when the swarm /
   event budget is exhausted.

Determinism contract (same as the fixed scheduler): the whole run is a pure
function of ``(spec, seed)`` at any worker count and chunking.  Each swarm's
simulation seed is the next ``SeedSequence.spawn`` child of the master seed
in global-index order, and acquisition decisions use only statistics of
*completed* rounds — so a round's allocation never depends on how its own
swarms were sharded.

Persistence rides on the streaming JSONL layer: completed swarms append to
the fleet log, checkpoints are a log offset plus the in-flight kernel
snapshot, and :meth:`AdaptiveFleetDriver.resume` replays the log to rebuild
the acquisition state exactly — a killed run (even mid-round, even
mid-swarm) resumes to the identical trail and boundary estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, NamedTuple, Optional, Sequence, Tuple, Union

import numpy as np

from ..analysis.tables import format_table
from ..simulation.rng import SeedLike
from ..swarm.swarm import unsupported_option
from .checkpoint import load_checkpoint
from .faults import FaultPlan
from .persistence import FleetLogWriter, read_log
from .result import FleetResult, FleetSwarmRecord
from .scheduler import (
    PersistentFleetExecution,
    _check_stacked_task,
    _run_fleet_chunk,
    _run_stacked_chunk,
    _run_stacked_task,
    _run_swarm_task,
)
from .spec import (
    FixedSampler,
    FleetSpec,
    ScenarioWeight,
    _freeze_values,
    _root_sequence,
    normalize_fleet_seed,
    task_for_point,
)


class CellKey(NamedTuple):
    """One candidate point: indices into (scenario strata, λ axis, U_s axis)."""

    stratum: int
    arrival: int
    seed: int


@dataclass(frozen=True)
class AdaptiveFleetSpec:
    """Frozen description of one budget-driven boundary-mapping run.

    The candidate set is ``scenario strata × arrival_rates × seed_rates``
    (an empty ``scenario_mix`` means one plain stratum).  Budgets and the
    stopping rule control how long sampling continues; the remaining fields
    mirror :class:`~repro.fleet.spec.FleetSpec` run controls.
    """

    name: str
    arrival_rates: Tuple[float, ...]
    seed_rates: Tuple[float, ...]
    scenario_mix: Tuple[ScenarioWeight, ...] = ()
    num_pieces: int = 5
    base_overrides: Tuple[Tuple[str, float], ...] = ()
    # -- budget & stopping rule --
    swarm_budget: int = 128
    event_budget: Optional[int] = None
    round_size: int = 16
    min_rounds: int = 2
    patience: int = 2
    variance_tol: float = 0.01
    boundary_band: Tuple[float, float] = (0.2, 0.8)
    boundary_boost: float = 4.0
    # -- per-swarm run controls (mirror FleetSpec) --
    horizon: float = 60.0
    sample_interval: Optional[float] = None
    max_events: Optional[int] = 20_000
    max_population: Optional[int] = 5_000
    backend: str = "array"
    initial_club_size: int = 30
    capture_fraction: float = 0.5
    capture_min_club: int = 10

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrival_rates", tuple(self.arrival_rates))
        object.__setattr__(self, "seed_rates", tuple(self.seed_rates))
        object.__setattr__(self, "scenario_mix", tuple(self.scenario_mix))
        object.__setattr__(self, "base_overrides", tuple(self.base_overrides))
        for label, values in (
            ("arrival_rates", self.arrival_rates),
            ("seed_rates", self.seed_rates),
        ):
            if not values:
                raise ValueError(f"{label} must not be empty")
            if any(b <= a for a, b in zip(values, values[1:])):
                raise ValueError(f"{label} must be strictly increasing: {values}")
        if self.swarm_budget < 1:
            raise ValueError(f"swarm_budget must be >= 1, got {self.swarm_budget}")
        if self.event_budget is not None and self.event_budget < 1:
            raise ValueError(f"event_budget must be >= 1, got {self.event_budget}")
        if self.round_size < 1:
            raise ValueError(f"round_size must be >= 1, got {self.round_size}")
        if self.min_rounds < 0:
            raise ValueError(f"min_rounds must be >= 0, got {self.min_rounds}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.variance_tol <= 0:
            raise ValueError(f"variance_tol must be positive, got {self.variance_tol}")
        lo, hi = self.boundary_band
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"boundary_band must satisfy 0 <= lo < hi <= 1: {lo, hi}")
        if self.boundary_boost < 1.0:
            raise ValueError(
                f"boundary_boost must be >= 1 (1 disables it), got {self.boundary_boost}"
            )

    @classmethod
    def of(
        cls,
        name: str,
        arrival_rates: Sequence[float],
        seed_rates: Sequence[float],
        base_overrides: Optional[Dict[str, float]] = None,
        **kwargs,
    ) -> "AdaptiveFleetSpec":
        """Convenience constructor accepting a plain mapping of overrides."""
        frozen = _freeze_values(base_overrides or {}, "AdaptiveFleetSpec")
        return cls(
            name=name,
            arrival_rates=tuple(arrival_rates),
            seed_rates=tuple(seed_rates),
            base_overrides=frozen,
            **kwargs,
        )

    # -- candidate set -------------------------------------------------------

    @property
    def strata(self) -> Tuple[ScenarioWeight, ...]:
        """The scenario strata (an empty mix is one plain stratum)."""
        return self.scenario_mix or (ScenarioWeight(scenario=None),)

    @property
    def grid_shape(self) -> Tuple[int, int, int]:
        return (len(self.strata), len(self.arrival_rates), len(self.seed_rates))

    @property
    def cells(self) -> Tuple[CellKey, ...]:
        """All candidate points in deterministic (stratum, λ, U_s) order."""
        strata, arrivals, seeds = self.grid_shape
        return tuple(
            CellKey(m, a, s)
            for m in range(strata)
            for a in range(arrivals)
            for s in range(seeds)
        )

    def cell_point(self, cell: CellKey) -> Tuple[float, float, str]:
        """The ``(λ, U_s, scenario label)`` a cell stands for."""
        return (
            self.arrival_rates[cell.arrival],
            self.seed_rates[cell.seed],
            self.strata[cell.stratum].label,
        )

    def execution_spec(self) -> FleetSpec:
        """The plain ``FleetSpec`` carrying this run's per-swarm controls.

        Sampler and scenario mix are unused (the driver builds tasks from
        the acquisition's cell choices); the worker-side helpers only read
        run controls and capture thresholds from it.
        """
        return FleetSpec(
            name=self.name,
            num_swarms=self.swarm_budget,
            sampler=FixedSampler(),
            scenario_mix=(),
            horizon=self.horizon,
            sample_interval=self.sample_interval,
            max_events=self.max_events,
            max_population=self.max_population,
            backend=self.backend,
            initial_club_size=self.initial_club_size,
            capture_fraction=self.capture_fraction,
            capture_min_club=self.capture_min_club,
        )


def beta_mean_variance(successes: int, trials: int) -> Tuple[float, float]:
    """Mean and variance of the Beta(1 + successes, 1 + failures) posterior."""
    alpha = 1.0 + successes
    beta = 1.0 + trials - successes
    total = alpha + beta
    mean = alpha / total
    variance = alpha * beta / (total * total * (total + 1.0))
    return mean, variance


@dataclass(eq=False)
class CaptureGrid:
    """Beta-posterior capture-probability estimates over the candidate grid.

    Shared between the adaptive driver (acquisition + final estimate) and
    uniform fleet results (:meth:`from_records`, for apples-to-apples
    boundary-tightness comparisons).
    """

    arrival_rates: Tuple[float, ...]
    seed_rates: Tuple[float, ...]
    labels: Tuple[str, ...]
    successes: np.ndarray  # int array, shape (strata, arrivals, seeds)
    trials: np.ndarray
    band: Tuple[float, float] = (0.2, 0.8)

    @classmethod
    def empty(cls, spec: AdaptiveFleetSpec) -> "CaptureGrid":
        shape = spec.grid_shape
        return cls(
            arrival_rates=spec.arrival_rates,
            seed_rates=spec.seed_rates,
            labels=tuple(entry.label for entry in spec.strata),
            successes=np.zeros(shape, dtype=np.int64),
            trials=np.zeros(shape, dtype=np.int64),
            band=spec.boundary_band,
        )

    @classmethod
    def from_records(
        cls,
        records: Sequence[FleetSwarmRecord],
        arrival_rates: Sequence[float],
        seed_rates: Sequence[float],
        labels: Sequence[str] = ("plain",),
        band: Tuple[float, float] = (0.2, 0.8),
    ) -> "CaptureGrid":
        """Bin uniform-fleet records onto the grid by exact rate match.

        Records whose ``(scenario, arrival_rate, seed_rate)`` does not land
        on the grid are ignored (same exact-equality convention as
        :func:`repro.experiments.fleet.run_fleet_phase_diagram`).
        """
        grid = cls(
            arrival_rates=tuple(arrival_rates),
            seed_rates=tuple(seed_rates),
            labels=tuple(labels),
            successes=np.zeros(
                (len(labels), len(arrival_rates), len(seed_rates)), dtype=np.int64
            ),
            trials=np.zeros(
                (len(labels), len(arrival_rates), len(seed_rates)), dtype=np.int64
            ),
            band=band,
        )
        label_index = {label: i for i, label in enumerate(grid.labels)}
        arrival_index = {rate: i for i, rate in enumerate(grid.arrival_rates)}
        seed_index = {rate: i for i, rate in enumerate(grid.seed_rates)}
        for record in records:
            m = label_index.get(record.scenario)
            a = arrival_index.get(record.arrival_rate)
            s = seed_index.get(record.seed_rate)
            if m is None or a is None or s is None:
                continue
            grid.add(CellKey(m, a, s), record.captured)
        return grid

    def add(self, cell: CellKey, captured: bool) -> None:
        self.trials[cell] += 1
        self.successes[cell] += int(captured)

    # -- posterior surfaces --------------------------------------------------

    def mean(self) -> np.ndarray:
        alpha = 1.0 + self.successes
        beta = 1.0 + self.trials - self.successes
        return alpha / (alpha + beta)

    def variance(self) -> np.ndarray:
        alpha = 1.0 + self.successes
        beta = 1.0 + self.trials - self.successes
        total = alpha + beta
        return alpha * beta / (total * total * (total + 1.0))

    def boundary_mask(self) -> np.ndarray:
        """Cells currently on the empirical capture boundary.

        A cell is boundary when its posterior mean lies inside ``band``,
        or when a 4-neighbour *within the same stratum* sits on the other
        side of 0.5 — i.e. the capture transition passes next to it.
        """
        means = self.mean()
        lo, hi = self.band
        mask = (means >= lo) & (means <= hi)
        side = means >= 0.5
        # λ-axis neighbours.
        flip = side[:, 1:, :] != side[:, :-1, :]
        mask[:, 1:, :] |= flip
        mask[:, :-1, :] |= flip
        # U_s-axis neighbours.
        flip = side[:, :, 1:] != side[:, :, :-1]
        mask[:, :, 1:] |= flip
        mask[:, :, :-1] |= flip
        return mask

    def boundary_cells(self) -> Tuple[CellKey, ...]:
        mask = self.boundary_mask()
        return tuple(
            CellKey(int(m), int(a), int(s)) for m, a, s in zip(*np.nonzero(mask))
        )

    def mean_boundary_variance(self) -> float:
        """Mean Beta-posterior variance over the current boundary cells."""
        mask = self.boundary_mask()
        if not mask.any():
            return 0.0
        return float(self.variance()[mask].mean())

    def boundary_estimate(self) -> Dict[Tuple[str, float], Optional[float]]:
        """Interpolated capture-onset λ* per ``(scenario label, U_s)`` row.

        ``None`` means the posterior never crosses 0.5 along the λ axis
        (no capture inside the sampled range); a row already captured at
        the smallest λ reports that smallest λ.
        """
        means = self.mean()
        estimate: Dict[Tuple[str, float], Optional[float]] = {}
        for m, label in enumerate(self.labels):
            for s, seed_rate in enumerate(self.seed_rates):
                row = means[m, :, s]
                key = (label, seed_rate)
                if row[0] >= 0.5:
                    estimate[key] = float(self.arrival_rates[0])
                    continue
                estimate[key] = None
                for a in range(1, len(self.arrival_rates)):
                    if row[a] >= 0.5:
                        x0, x1 = self.arrival_rates[a - 1], self.arrival_rates[a]
                        y0, y1 = row[a - 1], row[a]
                        estimate[key] = float(x0 + (0.5 - y0) * (x1 - x0) / (y1 - y0))
                        break
        return estimate

    def key(self) -> Tuple:
        """Pure-data identity (arrays frozen to nested tuples)."""
        return (
            self.arrival_rates,
            self.seed_rates,
            self.labels,
            tuple(map(tuple, map(tuple, self.successes.tolist()))),
            tuple(map(tuple, map(tuple, self.trials.tolist()))),
            self.band,
        )


@dataclass(frozen=True)
class RoundSummary:
    """Trail entry of one completed acquisition round."""

    index: int
    cells: Tuple[CellKey, ...]  # sampled cells, in allocation order
    boundary_size: int
    mean_boundary_variance: float


def _allocate(scores: np.ndarray, count: int) -> Tuple[int, ...]:
    """Deterministic divisor apportionment of ``count`` swarms over scores.

    Repeatedly assigns the next swarm to the cell maximizing
    ``score / (1 + already assigned this round)`` (D'Hondt), ties broken by
    the lowest cell index — a pure function of the scores, so identical at
    any worker count.  With a flat score vector this degenerates to
    round-robin over all cells (the cold-start exploration round).
    """
    assigned = np.zeros(len(scores), dtype=np.int64)
    order: List[int] = []
    for _ in range(count):
        quotients = scores / (assigned + 1)
        best = int(np.argmax(quotients))  # argmax takes the first (lowest) index
        assigned[best] += 1
        order.append(best)
    return tuple(order)


class _AcquisitionState:
    """The deterministic acquisition automaton of one adaptive run.

    Consumes completed rounds (allocation + their records) and produces the
    next allocation; replaying the same record stream through it — live, or
    from the JSONL log on resume — reproduces the identical decisions.
    """

    def __init__(self, spec: AdaptiveFleetSpec):
        self.spec = spec
        self.grid = CaptureGrid.empty(spec)
        self.trail: List[RoundSummary] = []
        self.completed = 0  # records folded into *completed* rounds
        self.events = 0
        self.stable_rounds = 0
        self.prev_boundary: Optional[Tuple[CellKey, ...]] = None
        self.stopped: Optional[str] = None

    def next_round(self) -> Optional[Tuple[int, ...]]:
        """The next round's cell allocation, or ``None`` when stopping."""
        if self.stopped is not None:
            return None
        if (
            len(self.trail) >= self.spec.min_rounds
            and self.stable_rounds >= self.spec.patience
        ):
            self.stopped = "boundary-stable"
            return None
        if self.completed >= self.spec.swarm_budget:
            self.stopped = "swarm-budget"
            return None
        if (
            self.spec.event_budget is not None
            and self.events >= self.spec.event_budget
        ):
            self.stopped = "event-budget"
            return None
        count = min(self.spec.round_size, self.spec.swarm_budget - self.completed)
        scores = self.grid.variance().reshape(-1).copy()
        boost = self.grid.boundary_mask().reshape(-1)
        scores[boost] *= self.spec.boundary_boost
        return _allocate(scores, count)

    def complete_round(
        self, allocation: Tuple[int, ...], records: Sequence[FleetSwarmRecord]
    ) -> None:
        """Fold one finished round's records into the acquisition posterior."""
        if len(records) != len(allocation):
            raise ValueError(
                f"round of {len(allocation)} swarms completed with "
                f"{len(records)} records"
            )
        cells = self.spec.cells
        for cell_index, record in zip(allocation, records):
            self.grid.add(cells[cell_index], record.captured)
            self.events += record.events
        self.completed += len(allocation)
        boundary = self.grid.boundary_cells()
        mean_variance = self.grid.mean_boundary_variance()
        if boundary == self.prev_boundary and mean_variance <= self.spec.variance_tol:
            self.stable_rounds += 1
        else:
            self.stable_rounds = 0
        self.prev_boundary = boundary
        self.trail.append(
            RoundSummary(
                index=len(self.trail),
                cells=tuple(cells[i] for i in allocation),
                boundary_size=len(boundary),
                mean_boundary_variance=mean_variance,
            )
        )


def _replay_state(
    spec: AdaptiveFleetSpec, records: Sequence[FleetSwarmRecord]
) -> Tuple[_AcquisitionState, Optional[Tuple[Tuple[int, ...], int]]]:
    """Rebuild the acquisition state from a log's record prefix.

    Returns the state after all *completed* rounds plus, when the record
    stream ends mid-round, the pending ``(allocation, done_in_round)`` of
    the interrupted round (whose allocation is re-derived from the same
    completed-round statistics the original run used).
    """
    state = _AcquisitionState(spec)
    position = 0
    while position < len(records):
        allocation = state.next_round()
        if allocation is None:
            raise ValueError(
                "fleet log holds more records than the acquisition schedule "
                "explains; the log does not belong to this spec/seed"
            )
        if position + len(allocation) <= len(records):
            state.complete_round(
                allocation, records[position : position + len(allocation)]
            )
            position += len(allocation)
        else:
            return state, (allocation, len(records) - position)
    return state, None


class _SeedStream:
    """Sequential ``SeedSequence.spawn`` children keyed by global swarm index."""

    def __init__(self, token):
        self._root = _root_sequence(token)
        self._cursor = 0

    def skip(self, count: int) -> None:
        if count:
            self._root.spawn(count)
            self._cursor += count

    def child(self, index: int) -> np.random.SeedSequence:
        if index != self._cursor:
            raise ValueError(
                f"seed stream out of step: asked for child {index}, cursor at "
                f"{self._cursor}"
            )
        self._cursor += 1
        return self._root.spawn(1)[0]


@dataclass(eq=False)
class AdaptiveFleetResult:
    """Outcome of one adaptive boundary-mapping run.

    ``fleet`` is the ordinary streaming census over every sampled swarm;
    ``rounds`` is the per-round trail (which cells each round sampled, how
    the boundary uncertainty shrank); ``cell_assignments`` pins each record
    to its candidate cell, in global sample order.  ``stopped`` names the
    stopping-rule clause that ended the run (``None`` for an interrupted
    partial result awaiting resume).
    """

    spec: AdaptiveFleetSpec
    fleet: FleetResult
    rounds: Tuple[RoundSummary, ...]
    cell_assignments: Tuple[CellKey, ...]
    stopped: Optional[str]
    grid: CaptureGrid = field(init=False)

    def __post_init__(self) -> None:
        if len(self.cell_assignments) != len(self.fleet.records):
            raise ValueError(
                f"{len(self.cell_assignments)} cell assignments for "
                f"{len(self.fleet.records)} records"
            )
        grid = CaptureGrid.empty(self.spec)
        for cell, record in zip(self.cell_assignments, self.fleet.records):
            grid.add(cell, record.captured)
        self.grid = grid

    # -- boundary estimate ---------------------------------------------------

    @property
    def complete(self) -> bool:
        return self.stopped is not None

    def trail(self) -> Tuple[Tuple[float, float, str], ...]:
        """The sampled-point trail: ``(λ, U_s, scenario)`` per swarm, in order."""
        return tuple(self.spec.cell_point(cell) for cell in self.cell_assignments)

    def boundary_estimate(self) -> Dict[Tuple[str, float], Optional[float]]:
        return self.grid.boundary_estimate()

    def mean_boundary_variance(self) -> float:
        return self.grid.mean_boundary_variance()

    def fingerprint(self) -> Tuple:
        """Order-stable value identity (checkpoint-equality tests)."""
        return (
            self.spec.name,
            self.stopped,
            self.cell_assignments,
            self.fleet.fingerprint(),
            self.grid.key(),
        )

    # -- reporting -----------------------------------------------------------

    def report(self) -> str:
        """Posterior capture grid per stratum + round trail + fleet census."""
        lines = [
            f"adaptive fleet {self.spec.name!r}: {len(self.fleet.records)} swarms "
            f"sampled in {len(self.rounds)} rounds "
            f"(budget {self.spec.swarm_budget}), "
            f"stopped: {self.stopped or 'interrupted'}, "
            f"mean boundary variance {self.mean_boundary_variance():.4f}",
        ]
        means = self.grid.mean()
        trials = self.grid.trials
        for m, label in enumerate(self.grid.labels):
            headers = ["Us \\ lambda"] + [f"{rate:g}" for rate in self.spec.arrival_rates]
            rows = []
            for s, seed_rate in enumerate(self.spec.seed_rates):
                row = [f"{seed_rate:g}"]
                for a in range(len(self.spec.arrival_rates)):
                    row.append(f"{means[m, a, s]:.2f} (n={int(trials[m, a, s])})")
                rows.append(row)
            lines.append(
                format_table(
                    headers=headers,
                    rows=rows,
                    title=f"Posterior capture probability — stratum {label!r}",
                )
            )
        estimate_rows = [
            (label, f"{seed_rate:g}", "none" if value is None else f"{value:.3f}")
            for (label, seed_rate), value in sorted(self.boundary_estimate().items())
        ]
        lines.append(
            format_table(
                headers=["scenario", "Us", "lambda*"],
                rows=estimate_rows,
                title="Estimated capture-onset boundary (posterior mean = 0.5)",
            )
        )
        trail_rows = [
            (
                summary.index,
                len(summary.cells),
                summary.boundary_size,
                f"{summary.mean_boundary_variance:.4f}",
            )
            for summary in self.rounds
        ]
        lines.append(
            format_table(
                headers=["round", "swarms", "boundary cells", "mean boundary var"],
                rows=trail_rows,
                title="Acquisition trail",
            )
        )
        lines.append(self.fleet.report())
        return "\n\n".join(lines)


class AdaptiveFleetDriver(PersistentFleetExecution):
    """Execute an :class:`AdaptiveFleetSpec` with streaming persistence.

    Mirrors :class:`~repro.fleet.scheduler.FleetScheduler`'s surface —
    ``workers`` / ``chunk_size`` sharding through
    :func:`~repro.experiments.runner.map_tasks`, JSONL log streaming, offset
    checkpoints, deterministic kill (``stop_after_swarms`` /
    ``suspend_after_events``), exact :meth:`resume` and ``stacked``
    execution (each chunk of a round runs inside one
    :class:`~repro.swarm.stacked.StackedSwarmKernel`; records are
    bit-identical either way, so the sampled-point trail and boundary
    estimate do not depend on the execution path) — via the shared
    :class:`~repro.fleet.scheduler.PersistentFleetExecution` plumbing.
    """

    def __init__(
        self,
        spec: AdaptiveFleetSpec,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        log_path: Optional[Union[str, Path]] = None,
        fsync_every_n: int = 1,
        stacked: bool = False,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if stacked and spec.backend != "array":
            raise unsupported_option(
                "stacked fleet execution", "backend", spec.backend,
                f"spec {spec.name!r} must use the 'array' backend; run with "
                f"stacked=False or switch the spec to the array backend",
            )
        self.spec = spec
        self.stacked = stacked
        self._init_execution(
            workers,
            chunk_size,
            spec.round_size,
            checkpoint_path,
            checkpoint_every,
            log_path,
            fsync_every_n,
            stacked,
            max_retries=max_retries,
            task_timeout=task_timeout,
            retry_backoff=retry_backoff,
            rotate_every=rotate_every,
            compact_after=compact_after,
            fault_plan=fault_plan,
        )

    def _swarm_target(self) -> int:
        return self.spec.swarm_budget

    # -- entry points --------------------------------------------------------

    def run(
        self,
        seed: SeedLike = 0,
        stop_after_swarms: Optional[int] = None,
        suspend_after_events: Optional[int] = None,
    ) -> AdaptiveFleetResult:
        """Run the adaptive fleet from scratch until the stopping rule fires.

        ``stop_after_swarms`` / ``suspend_after_events`` are the same
        deterministic kill switches as on the fixed scheduler (the latter
        snapshots the next swarm mid-flight into the checkpoint).
        """
        if suspend_after_events is not None and stop_after_swarms is None:
            raise ValueError(
                "suspend_after_events requires stop_after_swarms (the swarm "
                "to suspend is the one right after the stop point)"
            )
        if stop_after_swarms is not None and self.checkpoint_path is None:
            raise ValueError(
                "stopping early without a checkpoint_path would lose the "
                "completed work; configure a checkpoint"
            )
        token = normalize_fleet_seed(seed)
        state = _AcquisitionState(self.spec)
        result = FleetResult(
            spec_name=self.spec.name, num_swarms=self.spec.swarm_budget
        )
        stream = _SeedStream(token)
        writer = self._open_writer(token)
        return self._drive(
            state,
            result,
            token,
            stream,
            writer,
            assignments=[],
            pending=None,
            in_flight=None,
            stop_after_swarms=stop_after_swarms,
            suspend_after_events=suspend_after_events,
            fresh=True,
        )

    def resume(
        self, checkpoint_path: Optional[Union[str, Path]] = None
    ) -> AdaptiveFleetResult:
        """Resume a killed adaptive run from its checkpoint + JSONL log.

        Replays the log prefix through the acquisition automaton (restoring
        posteriors, trail and the interrupted round's allocation), restores
        a mid-swarm kernel snapshot when present, and continues to the exact
        result of an uninterrupted run.
        """
        path = Path(checkpoint_path) if checkpoint_path else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint_path configured or given")
        checkpoint = load_checkpoint(path)
        if not isinstance(checkpoint.spec, AdaptiveFleetSpec):
            raise ValueError(
                f"{path} checkpoints a {type(checkpoint.spec).__name__}, not an "
                "adaptive fleet; use FleetScheduler.resume"
            )
        if checkpoint.spec != self.spec:
            raise ValueError(
                "checkpoint spec does not match this driver's spec; "
                "use AdaptiveFleetDriver.from_checkpoint"
            )
        self.checkpoint_path = path
        self.log_path = checkpoint.log_path(path)
        log = read_log(self.log_path, max_records=checkpoint.num_records)
        if len(log.records) < checkpoint.num_records:
            raise ValueError(
                f"fleet log {self.log_path} holds {len(log.records)} records "
                f"but the checkpoint expects {checkpoint.num_records}"
            )
        records = list(log.records)
        state, pending = _replay_state(self.spec, records)
        assignments = [
            cell for summary in state.trail for cell in summary.cells
        ]
        if pending is not None:
            allocation, done = pending
            assignments.extend(self.spec.cells[i] for i in allocation[:done])
        result = FleetResult.from_records(
            self.spec.name, self.spec.swarm_budget, records
        )
        stream = _SeedStream(checkpoint.seed)
        stream.skip(len(records))
        writer = self._open_writer(checkpoint.seed, checkpoint=checkpoint)
        return self._drive(
            state,
            result,
            checkpoint.seed,
            stream,
            writer,
            assignments=assignments,
            pending=pending,
            in_flight=checkpoint.in_flight,
            stop_after_swarms=None,
            suspend_after_events=None,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_path: Union[str, Path],
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_every: int = 1,
        fsync_every_n: int = 1,
        stacked: bool = False,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "AdaptiveFleetDriver":
        """Build a driver around the adaptive spec stored in a checkpoint.

        ``stacked`` (like the supervision and log-layout knobs) is an
        execution property, not part of the spec: a run checkpointed by
        either path resumes (bit-identically) through the other.
        """
        checkpoint = load_checkpoint(checkpoint_path)
        if not isinstance(checkpoint.spec, AdaptiveFleetSpec):
            raise ValueError(
                f"{checkpoint_path} does not checkpoint an adaptive fleet"
            )
        return cls(
            checkpoint.spec,
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            fsync_every_n=fsync_every_n,
            stacked=stacked,
            max_retries=max_retries,
            task_timeout=task_timeout,
            retry_backoff=retry_backoff,
            rotate_every=rotate_every,
            compact_after=compact_after,
            fault_plan=fault_plan,
        )

    # -- core ----------------------------------------------------------------

    def _task(self, stream: _SeedStream, global_index: int, cell_index: int):
        child = stream.child(global_index)
        _assignment_seq, simulation_seq = child.spawn(2)
        cell = self.spec.cells[cell_index]
        kwargs: Dict[str, float] = dict(self.spec.base_overrides)
        kwargs["num_pieces"] = self.spec.num_pieces
        kwargs["arrival_rate"] = self.spec.arrival_rates[cell.arrival]
        kwargs["seed_rate"] = self.spec.seed_rates[cell.seed]
        task = task_for_point(
            global_index, simulation_seq, kwargs, self.spec.strata[cell.stratum]
        )
        # Every task the driver runs flows through here, so this is the one
        # choke point for the stacked kernel's representability bound.
        if self.stacked:
            _check_stacked_task(task)
        return task

    def _drive(
        self,
        state: _AcquisitionState,
        result: FleetResult,
        token,
        stream: _SeedStream,
        writer: Optional[FleetLogWriter],
        assignments: List[CellKey],
        pending: Optional[Tuple[Tuple[int, ...], int]],
        in_flight: Optional[Tuple[int, Dict[str, Any]]],
        stop_after_swarms: Optional[int],
        suspend_after_events: Optional[int],
        fresh: bool = False,
    ) -> AdaptiveFleetResult:
        exec_spec = self.spec.execution_spec()
        cells = self.spec.cells
        run_task = _run_stacked_task if self.stacked else _run_swarm_task
        run_chunk = _run_stacked_chunk if self.stacked else _run_fleet_chunk
        try:
            if fresh:
                # An initial checkpoint pins the (spec, seed) pair on disk
                # before any work: a crash at any later point can resume.
                self._write_checkpoint(
                    result, token, writer, in_flight=None, fresh=True
                )
            if in_flight is not None:
                # The suspended swarm is the next one of the interrupted
                # round (or the first of a freshly allocated round when the
                # kill landed exactly on a round boundary).
                if pending is None:
                    allocation = state.next_round()
                    if allocation is None:
                        raise ValueError(
                            "checkpoint carries an in-flight swarm but the "
                            "acquisition schedule is already finished"
                        )
                    pending = (allocation, 0)
                allocation, done = pending
                index, snapshot = in_flight
                task = self._task(stream, index, allocation[done])
                record = run_task(exec_spec, task, snapshot=snapshot)
                result.add(record)
                assignments.append(cells[allocation[done]])
                self._append(writer, [record])
                pending = (allocation, done + 1)
                self._write_checkpoint(result, token, writer, in_flight=None)
            while True:
                if pending is not None:
                    allocation, done = pending
                    pending = None
                else:
                    allocation = state.next_round()
                    if allocation is None:
                        break
                    done = 0
                remaining = allocation[done:]
                run_now = len(remaining)
                if stop_after_swarms is not None:
                    run_now = min(
                        run_now, max(stop_after_swarms - len(result.records), 0)
                    )
                tasks = [
                    self._task(stream, len(result.records) + offset, cell_index)
                    for offset, cell_index in enumerate(remaining[:run_now])
                ]
                chunks = [
                    (
                        exec_spec,
                        tasks[start : start + self.chunk_size],
                        self.fault_plan,
                    )
                    for start in range(0, len(tasks), self.chunk_size)
                ]
                since_checkpoint = 0
                round_start = state.completed
                for records in self._map_chunks(run_chunk, run_task, chunks):
                    for record in records:
                        position_in_round = len(result.records) - round_start
                        result.add(record)
                        assignments.append(cells[allocation[position_in_round]])
                    self._append(writer, records)
                    since_checkpoint += 1
                    if since_checkpoint >= self.checkpoint_every:
                        self._write_checkpoint(result, token, writer, in_flight=None)
                        since_checkpoint = 0
                if run_now < len(remaining):
                    # Deterministic kill mid-round: optionally suspend the
                    # next swarm mid-flight so the checkpoint carries a
                    # kernel snapshot across the "kill".
                    pending_in_flight = None
                    if suspend_after_events is not None:
                        next_cell = remaining[run_now]
                        task = self._task(
                            stream, len(result.records), next_cell
                        )
                        outcome = run_task(
                            exec_spec, task, suspend_after_events=suspend_after_events
                        )
                        if isinstance(outcome, FleetSwarmRecord):
                            # Finished before the suspension point: record it.
                            result.add(outcome)
                            assignments.append(cells[next_cell])
                            self._append(writer, [outcome])
                        else:
                            pending_in_flight = (task.index, outcome)
                    self._write_checkpoint(
                        result, token, writer, in_flight=pending_in_flight
                    )
                    return self._partial_result(state, result, assignments)
                state.complete_round(
                    allocation,
                    result.records[state.completed : state.completed + len(allocation)],
                )
                self._write_checkpoint(result, token, writer, in_flight=None)
            self._write_checkpoint(result, token, writer, in_flight=None)
            return AdaptiveFleetResult(
                spec=self.spec,
                fleet=result,
                rounds=tuple(state.trail),
                cell_assignments=tuple(assignments),
                stopped=state.stopped,
            )
        finally:
            if writer is not None:
                writer.close()

    def _partial_result(
        self,
        state: _AcquisitionState,
        result: FleetResult,
        assignments: List[CellKey],
    ) -> AdaptiveFleetResult:
        return AdaptiveFleetResult(
            spec=self.spec,
            fleet=result,
            rounds=tuple(state.trail),
            cell_assignments=tuple(assignments),
            stopped=None,
        )


def run_adaptive_fleet(
    spec: AdaptiveFleetSpec,
    seed: SeedLike = 0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    log_path: Optional[Union[str, Path]] = None,
    stop_after_swarms: Optional[int] = None,
    suspend_after_events: Optional[int] = None,
    fsync_every_n: int = 1,
    stacked: bool = False,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
    retry_backoff: float = 0.0,
    rotate_every: Optional[int] = None,
    compact_after: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> AdaptiveFleetResult:
    """One-call adaptive execution (see :class:`AdaptiveFleetDriver`).

    ``backend=`` is accepted for signature uniformity with ``run_swarm`` /
    ``run_scenario`` but the execution backend is declared on the spec, so
    any non-``None`` value is rejected.
    """
    if backend is not None:
        raise unsupported_option(
            "run_adaptive_fleet", "backend", backend,
            "the execution backend is declared on the fleet spec; construct "
            "AdaptiveFleetSpec(backend=...) instead",
        )
    driver = AdaptiveFleetDriver(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        log_path=log_path,
        fsync_every_n=fsync_every_n,
        stacked=stacked,
        max_retries=max_retries,
        task_timeout=task_timeout,
        retry_backoff=retry_backoff,
        rotate_every=rotate_every,
        compact_after=compact_after,
        fault_plan=fault_plan,
    )
    return driver.run(
        seed=seed,
        stop_after_swarms=stop_after_swarms,
        suspend_after_events=suspend_after_events,
    )


def resume_adaptive_fleet(
    checkpoint_path: Union[str, Path],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_every: int = 1,
    fsync_every_n: int = 1,
    stacked: bool = False,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
    retry_backoff: float = 0.0,
    rotate_every: Optional[int] = None,
    compact_after: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> AdaptiveFleetResult:
    """Resume a killed adaptive fleet (see :meth:`AdaptiveFleetDriver.resume`)."""
    driver = AdaptiveFleetDriver.from_checkpoint(
        checkpoint_path,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_every=checkpoint_every,
        fsync_every_n=fsync_every_n,
        stacked=stacked,
        max_retries=max_retries,
        task_timeout=task_timeout,
        retry_backoff=retry_backoff,
        rotate_every=rotate_every,
        compact_after=compact_after,
        fault_plan=fault_plan,
    )
    return driver.resume()


__all__ = [
    "AdaptiveFleetDriver",
    "AdaptiveFleetResult",
    "AdaptiveFleetSpec",
    "CaptureGrid",
    "CellKey",
    "RoundSummary",
    "beta_mean_variance",
    "resume_adaptive_fleet",
    "run_adaptive_fleet",
]
