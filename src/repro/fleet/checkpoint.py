"""On-disk fleet checkpoints: crash-survivable progress for long fleet runs.

Since the streaming JSONL log (:mod:`repro.fleet.persistence`) became the
system of record for completed swarms, a checkpoint no longer carries the
record list.  It freezes a fleet run's progress as a *pointer* into the log
plus whatever cannot live in the log:

* the spec (fixed :class:`~repro.fleet.spec.FleetSpec` or adaptive
  :class:`~repro.fleet.adaptive.AdaptiveFleetSpec`) and the normalized
  master-seed token,
* ``num_records`` / ``(log_segment, log_offset)`` — how many swarms the log
  held, and which segment file and byte offset sit just past them, when the
  checkpoint was written,
* optionally the suspended mid-swarm kernel snapshot from
  :meth:`~repro.swarm.swarm._SwarmEventLoop.capture_state`.

Because swarm assignment and simulation seeding are pure functions of
``(spec, seed)`` and kernel snapshots resume bit-identically, a resumed
fleet reproduces the *exact* ``FleetResult`` an uninterrupted run would have
produced, at any worker count.  Resume truncates the log back to
``(log_segment, log_offset)``, so records appended after the last checkpoint
are simply re-run — the log and the checkpoint can never disagree.

Checkpoint writes are **crash-atomic and durable**: the pickle goes to a
sibling temp file, is fsync'd, renamed into place with ``os.replace``, and
the directory is fsync'd so the rename itself survives power loss.  The
previous checkpoint is retained as ``<name>.bak`` before each overwrite;
:func:`load_checkpoint` falls back to it (with a warning) if the primary is
corrupt — so a crash *or* bit rot during/after a checkpoint write costs at
most one checkpoint interval of re-run work, never the run.

The log file travels as a *sibling file name*, resolved against the
checkpoint's directory, so a checkpoint+log pair can be moved together.
"""

from __future__ import annotations

import os
import pickle
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .faults import FaultState, InjectedCheckpointCrash, corrupt_file_bytes

#: Version tag of the checkpoint payload layout.  Format 2 replaced the
#: inline record list with a (num_records, log_offset) pointer into the
#: sibling JSONL fleet log; format 3 added ``log_segment`` so the pointer
#: survives log rotation.  Format-2 checkpoints are still loaded (their
#: segment defaults to 0, which is what an unrotated log is).  The
#: in-flight kernel snapshot is opaque to this module and carries its
#: *own* format tag: snapshots written before the blocked draw buffer
#: existed (kernel snapshot format 1, no ``"draws"`` entry) are still
#: restored exactly by
#: :meth:`repro.swarm.swarm._SwarmEventLoop.restore_state`, so old
#: checkpoints survive the buffer migration without a checkpoint-format
#: bump.
CHECKPOINT_FORMAT = 3

_LOADABLE_FORMATS = (2, 3)


def default_log_path(checkpoint_path: Union[str, Path]) -> Path:
    """The sibling JSONL log a checkpoint pairs with by default."""
    target = Path(checkpoint_path)
    return target.with_name(target.name + ".jsonl")


def backup_path(checkpoint_path: Union[str, Path]) -> Path:
    """The previous-checkpoint file retained across overwrites."""
    target = Path(checkpoint_path)
    return target.with_name(target.name + ".bak")


@dataclass
class FleetCheckpoint:
    """Serialized progress of one fleet run (fixed or adaptive)."""

    spec: Any
    seed: Any
    #: Number of completed-swarm records the log held at checkpoint time;
    #: also the index of the next swarm to run.
    num_records: int
    #: Sibling file name of the JSONL fleet log (resolved relative to the
    #: checkpoint's directory).
    log_name: str
    #: Byte offset just past record ``num_records - 1`` within the log
    #: segment named by ``log_segment``.
    log_offset: int
    #: ``(swarm index, kernel snapshot)`` of a mid-swarm suspension, if any;
    #: the index always equals ``num_records`` when present.
    in_flight: Optional[Tuple[int, Dict[str, Any]]] = None
    #: Which log segment ``log_offset`` points into (0 for an unrotated
    #: log, which is also what format-2 checkpoints imply).
    log_segment: int = 0
    format: int = CHECKPOINT_FORMAT

    def __post_init__(self) -> None:
        if self.num_records < 0:
            raise ValueError(f"num_records must be >= 0, got {self.num_records}")
        if self.log_offset < 0:
            raise ValueError(f"log_offset must be >= 0, got {self.log_offset}")
        if self.log_segment < 0:
            raise ValueError(f"log_segment must be >= 0, got {self.log_segment}")
        if self.in_flight is not None and self.in_flight[0] != self.num_records:
            raise ValueError(
                f"in-flight swarm {self.in_flight[0]} does not match "
                f"num_records={self.num_records}"
            )

    @property
    def next_index(self) -> int:
        """Index of the next swarm not yet folded into the log."""
        return self.num_records

    def log_path(self, checkpoint_path: Union[str, Path]) -> Path:
        """Resolve the paired log against the checkpoint's directory."""
        return Path(checkpoint_path).parent / self.log_name


def _fsync_dir(directory: Path) -> None:
    """Fsync a directory so a rename is durable (best-effort on exotic FS)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def save_checkpoint(
    path: Union[str, Path],
    checkpoint: FleetCheckpoint,
    faults: Optional[FaultState] = None,
    keep_previous: bool = True,
) -> Path:
    """Durably and atomically pickle ``checkpoint`` to ``path``.

    Write order: temp file → fsync → rotate the old primary to ``.bak``
    (unless ``keep_previous=False``, which *removes* any stale backup — the
    first checkpoint of a fresh run must not leave a previous run's state
    loadable) → ``os.replace`` → directory fsync.  A crash between any two
    steps leaves either the old checkpoint, the old checkpoint plus a
    complete ``.bak`` copy, or the new checkpoint — never a torn file at
    ``path``.

    ``faults`` hooks the deterministic chaos harness in: a planned
    *checkpoint crash* dies after writing half the temp file (the primary
    is untouched), a planned *corruption* flips bytes in the finished file
    (which :func:`load_checkpoint` detects and falls back from).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    ordinal = faults.next_checkpoint_ordinal() if faults is not None else -1
    temp = target.with_name(target.name + ".tmp")
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    if faults is not None and faults.take_checkpoint_crash(ordinal):
        temp.write_bytes(payload[: max(1, len(payload) // 2)])
        raise InjectedCheckpointCrash(
            f"injected crash during checkpoint write #{ordinal}"
        )
    with temp.open("wb") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    backup = backup_path(target)
    if keep_previous:
        if target.exists():
            os.replace(target, backup)
    elif backup.exists():
        backup.unlink()
    os.replace(temp, target)
    _fsync_dir(target.parent)
    if faults is not None and faults.take_corrupt_checkpoint(ordinal):
        corrupt_file_bytes(target)
    return target


def _load_checkpoint_file(path: Path) -> FleetCheckpoint:
    with path.open("rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, FleetCheckpoint):
        raise ValueError(f"{path} does not contain a FleetCheckpoint")
    if checkpoint.format not in _LOADABLE_FORMATS:
        raise ValueError(
            f"unsupported checkpoint format {checkpoint.format} "
            f"(expected one of {list(_LOADABLE_FORMATS)})"
        )
    if not hasattr(checkpoint, "log_segment"):
        # A format-2 pickle restored into the format-3 dataclass: the field
        # default does not apply through pickle's __dict__ path, so pin it.
        checkpoint.log_segment = 0
    return checkpoint


def load_checkpoint(path: Union[str, Path]) -> FleetCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`.

    If the primary file is corrupt or unreadable but a ``.bak`` copy from
    the previous checkpoint write exists, loads that instead with a
    warning — resuming from one checkpoint interval earlier re-runs a few
    swarms deterministically rather than losing the run.
    """
    target = Path(path)
    try:
        return _load_checkpoint_file(target)
    except FileNotFoundError:
        raise
    except Exception as error:
        backup = backup_path(target)
        if not backup.exists():
            raise
        checkpoint = _load_checkpoint_file(backup)
        warnings.warn(
            f"checkpoint {target} is unreadable ({type(error).__name__}: "
            f"{error}); falling back to the previous checkpoint {backup}",
            stacklevel=2,
        )
        return checkpoint


__all__ = [
    "CHECKPOINT_FORMAT",
    "FleetCheckpoint",
    "backup_path",
    "default_log_path",
    "load_checkpoint",
    "save_checkpoint",
]
