"""On-disk fleet checkpoints: crash-survivable progress for long fleet runs.

A checkpoint freezes a fleet run's progress as pure data: the spec, the
master seed, the per-swarm records aggregated so far (a strict index
prefix), and — when the run was stopped mid-swarm — the suspended swarm's
kernel snapshot from
:meth:`~repro.swarm.swarm._SwarmEventLoop.capture_state`.  Because swarm
assignment and simulation seeding are pure functions of ``(spec, seed)``
(see :func:`repro.fleet.spec.materialize_tasks`) and kernel snapshots resume
bit-identically, a resumed fleet reproduces the *exact* ``FleetResult`` an
uninterrupted run would have produced, at any worker count.

Checkpoints are pickled atomically (write to a sibling temp file, then
``os.replace``), so a crash while checkpointing never corrupts the previous
checkpoint.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .result import FleetSwarmRecord
from .spec import FleetSpec

#: Version tag of the checkpoint payload layout.
CHECKPOINT_FORMAT = 1


@dataclass
class FleetCheckpoint:
    """Serialized progress of one fleet run."""

    spec: FleetSpec
    seed: Any
    records: List[FleetSwarmRecord]
    #: Index of the next swarm that has not been folded into ``records``.
    next_index: int
    #: ``(swarm index, kernel snapshot)`` of a mid-swarm suspension, if any;
    #: the index always equals ``next_index`` when present.
    in_flight: Optional[Tuple[int, Dict[str, Any]]] = None
    format: int = CHECKPOINT_FORMAT

    def __post_init__(self) -> None:
        if self.next_index != len(self.records):
            raise ValueError(
                f"checkpoint prefix mismatch: next_index={self.next_index} but "
                f"{len(self.records)} records"
            )
        if self.in_flight is not None and self.in_flight[0] != self.next_index:
            raise ValueError(
                f"in-flight swarm {self.in_flight[0]} does not match "
                f"next_index={self.next_index}"
            )


def save_checkpoint(path: Union[str, Path], checkpoint: FleetCheckpoint) -> Path:
    """Atomically pickle ``checkpoint`` to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    with temp.open("wb") as handle:
        pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp, target)
    return target


def load_checkpoint(path: Union[str, Path]) -> FleetCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with Path(path).open("rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, FleetCheckpoint):
        raise ValueError(f"{path} does not contain a FleetCheckpoint")
    if checkpoint.format != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {checkpoint.format} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    return checkpoint


__all__ = [
    "CHECKPOINT_FORMAT",
    "FleetCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
]
