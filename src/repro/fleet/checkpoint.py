"""On-disk fleet checkpoints: crash-survivable progress for long fleet runs.

Since the streaming JSONL log (:mod:`repro.fleet.persistence`) became the
system of record for completed swarms, a checkpoint no longer carries the
record list.  It freezes a fleet run's progress as a *pointer* into the log
plus whatever cannot live in the log:

* the spec (fixed :class:`~repro.fleet.spec.FleetSpec` or adaptive
  :class:`~repro.fleet.adaptive.AdaptiveFleetSpec`) and the normalized
  master-seed token,
* ``num_records`` / ``log_offset`` — how many swarms the log held, and the
  byte offset just past them, when the checkpoint was written,
* optionally the suspended mid-swarm kernel snapshot from
  :meth:`~repro.swarm.swarm._SwarmEventLoop.capture_state`.

Because swarm assignment and simulation seeding are pure functions of
``(spec, seed)`` and kernel snapshots resume bit-identically, a resumed
fleet reproduces the *exact* ``FleetResult`` an uninterrupted run would have
produced, at any worker count.  Resume truncates the log back to
``log_offset``, so records appended after the last checkpoint are simply
re-run — the log and the checkpoint can never disagree.

Checkpoints are pickled atomically (write to a sibling temp file, then
``os.replace``), so a crash while checkpointing never corrupts the previous
checkpoint.  The log file travels as a *sibling file name*, resolved against
the checkpoint's directory, so a checkpoint+log pair can be moved together.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

#: Version tag of the checkpoint payload layout.  Format 2 replaced the
#: inline record list with a (num_records, log_offset) pointer into the
#: sibling JSONL fleet log.  The in-flight kernel snapshot is opaque to this
#: module and carries its *own* format tag: snapshots written before the
#: blocked draw buffer existed (kernel snapshot format 1, no ``"draws"``
#: entry) are still restored exactly by
#: :meth:`repro.swarm.swarm._SwarmEventLoop.restore_state`, so old
#: checkpoints survive the buffer migration without a checkpoint-format
#: bump.
CHECKPOINT_FORMAT = 2


def default_log_path(checkpoint_path: Union[str, Path]) -> Path:
    """The sibling JSONL log a checkpoint pairs with by default."""
    target = Path(checkpoint_path)
    return target.with_name(target.name + ".jsonl")


@dataclass
class FleetCheckpoint:
    """Serialized progress of one fleet run (fixed or adaptive)."""

    spec: Any
    seed: Any
    #: Number of completed-swarm records the log held at checkpoint time;
    #: also the index of the next swarm to run.
    num_records: int
    #: Sibling file name of the JSONL fleet log (resolved relative to the
    #: checkpoint's directory).
    log_name: str
    #: Byte offset just past record ``num_records - 1`` in the log.
    log_offset: int
    #: ``(swarm index, kernel snapshot)`` of a mid-swarm suspension, if any;
    #: the index always equals ``num_records`` when present.
    in_flight: Optional[Tuple[int, Dict[str, Any]]] = None
    format: int = CHECKPOINT_FORMAT

    def __post_init__(self) -> None:
        if self.num_records < 0:
            raise ValueError(f"num_records must be >= 0, got {self.num_records}")
        if self.log_offset < 0:
            raise ValueError(f"log_offset must be >= 0, got {self.log_offset}")
        if self.in_flight is not None and self.in_flight[0] != self.num_records:
            raise ValueError(
                f"in-flight swarm {self.in_flight[0]} does not match "
                f"num_records={self.num_records}"
            )

    @property
    def next_index(self) -> int:
        """Index of the next swarm not yet folded into the log."""
        return self.num_records

    def log_path(self, checkpoint_path: Union[str, Path]) -> Path:
        """Resolve the paired log against the checkpoint's directory."""
        return Path(checkpoint_path).parent / self.log_name


def save_checkpoint(path: Union[str, Path], checkpoint: FleetCheckpoint) -> Path:
    """Atomically pickle ``checkpoint`` to ``path``."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = target.with_name(target.name + ".tmp")
    with temp.open("wb") as handle:
        pickle.dump(checkpoint, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp, target)
    return target


def load_checkpoint(path: Union[str, Path]) -> FleetCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    with Path(path).open("rb") as handle:
        checkpoint = pickle.load(handle)
    if not isinstance(checkpoint, FleetCheckpoint):
        raise ValueError(f"{path} does not contain a FleetCheckpoint")
    if checkpoint.format != CHECKPOINT_FORMAT:
        raise ValueError(
            f"unsupported checkpoint format {checkpoint.format} "
            f"(expected {CHECKPOINT_FORMAT})"
        )
    return checkpoint


__all__ = [
    "CHECKPOINT_FORMAT",
    "FleetCheckpoint",
    "default_log_path",
    "load_checkpoint",
    "save_checkpoint",
]
