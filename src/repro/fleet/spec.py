"""Fleet specifications: parameter samplers, scenario mixes, swarm tasks.

A *fleet* is a population of independent swarms treated as one workload: the
tracker-scale counterpart of a single :func:`~repro.swarm.swarm.run_swarm`
call.  The frozen :class:`FleetSpec` bundles

* a swarm count,
* a :class:`ParameterSampler` drawing each swarm's
  :class:`~repro.core.parameters.SystemParameters` fields — fixed values
  (:class:`FixedSampler`), a cartesian grid cycled over the swarm index
  (:class:`GridSampler`), or independent uniform draws
  (:class:`RandomSampler`),
* a scenario mix — a weighted distribution over registered scenario names
  (plus per-name factory overrides), with ``None`` standing for the plain
  homogeneous workload,
* and the shared run controls (horizon, event/population caps, backend).

:func:`materialize_tasks` turns a spec plus one master seed into the
deterministic list of per-swarm :class:`SwarmTask`\\ s.  Seeding follows the
:class:`~repro.experiments.runner.BatchRunner` contract: the master seed
spawns one ``SeedSequence`` child per swarm, which in turn spawns an
*assignment* stream (parameter draws + scenario choice) and a *simulation*
stream.  Both depend only on ``(master seed, swarm index)``, so the same
master seed yields the identical fleet — same parameters, same scenarios,
same trajectories — at any worker count and any chunking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.parameters import SystemParameters
from ..core.scenario import ScenarioSpec, base_params, make_scenario
from ..simulation.rng import SeedLike

#: ``SystemParameters`` fields a sampler may vary (all scalars; arrivals are
#: the empty-handed flash-crowd mix at rate ``arrival_rate``).
SAMPLABLE_FIELDS = (
    "num_pieces",
    "arrival_rate",
    "seed_rate",
    "peer_rate",
    "seed_departure_rate",
)

#: Scenario-mix label of plain (scenario-less) swarms.
PLAIN_LABEL = "plain"


def _freeze_values(values: Mapping[str, float], context: str) -> Tuple[Tuple[str, float], ...]:
    for key in values:
        if key not in SAMPLABLE_FIELDS:
            raise ValueError(
                f"{context}: unknown parameter field {key!r}; "
                f"samplable fields are {SAMPLABLE_FIELDS}"
            )
    return tuple(sorted(values.items()))


@dataclass(frozen=True)
class ParameterSampler:
    """Base class: maps a swarm index (plus its RNG) to parameter kwargs."""

    def draw(self, index: int, rng: np.random.Generator) -> Dict[str, float]:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSampler(ParameterSampler):
    """Every swarm gets the same parameter overrides."""

    values: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def of(cls, **values: float) -> "FixedSampler":
        return cls(values=_freeze_values(values, "FixedSampler"))

    def draw(self, index: int, rng: np.random.Generator) -> Dict[str, float]:
        return dict(self.values)


@dataclass(frozen=True)
class GridSampler(ParameterSampler):
    """Cartesian grid over parameter axes, cycled over the swarm index.

    Swarm ``i`` receives grid cell ``i % grid_size`` (row-major over the
    axes in the given order), so ``num_swarms = grid_size * k`` puts exactly
    ``k`` swarms in every cell — the phase-diagram workhorse.
    """

    axes: Tuple[Tuple[str, Tuple[float, ...]], ...] = ()
    base: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def of(
        cls, axes: Mapping[str, Sequence[float]], **base: float
    ) -> "GridSampler":
        frozen_axes = tuple(
            (key, tuple(values)) for key, values in axes.items()
        )
        for key, values in frozen_axes:
            if key not in SAMPLABLE_FIELDS:
                raise ValueError(
                    f"GridSampler: unknown parameter field {key!r}; "
                    f"samplable fields are {SAMPLABLE_FIELDS}"
                )
            if not values:
                raise ValueError(f"GridSampler: axis {key!r} has no values")
        return cls(axes=frozen_axes, base=_freeze_values(base, "GridSampler"))

    @property
    def grid_size(self) -> int:
        size = 1
        for _key, values in self.axes:
            size *= len(values)
        return size

    def cell(self, index: int) -> Dict[str, float]:
        """The parameter overrides of grid cell ``index % grid_size``."""
        remainder = index % self.grid_size
        overrides: Dict[str, float] = {}
        # Row-major: the last axis varies fastest.
        for key, values in reversed(self.axes):
            overrides[key] = values[remainder % len(values)]
            remainder //= len(values)
        return overrides

    def draw(self, index: int, rng: np.random.Generator) -> Dict[str, float]:
        values = dict(self.base)
        values.update(self.cell(index))
        return values


@dataclass(frozen=True)
class RandomSampler(ParameterSampler):
    """Independent uniform draws per swarm over ``(low, high)`` ranges.

    The draws consume the swarm's *assignment* RNG stream (one uniform per
    range, in sorted field order), so they depend only on the master seed
    and the swarm index.  ``num_pieces`` cannot be randomised (it must stay
    an integer shared with the piece-set machinery); vary it with a
    :class:`GridSampler` axis instead.
    """

    ranges: Tuple[Tuple[str, Tuple[float, float]], ...] = ()
    base: Tuple[Tuple[str, float], ...] = ()

    @classmethod
    def of(
        cls, ranges: Mapping[str, Tuple[float, float]], **base: float
    ) -> "RandomSampler":
        frozen: List[Tuple[str, Tuple[float, float]]] = []
        for key in sorted(ranges):
            low, high = ranges[key]
            if key == "num_pieces":
                raise ValueError(
                    "RandomSampler cannot vary num_pieces; use a GridSampler axis"
                )
            if key not in SAMPLABLE_FIELDS:
                raise ValueError(
                    f"RandomSampler: unknown parameter field {key!r}; "
                    f"samplable fields are {SAMPLABLE_FIELDS}"
                )
            if not low <= high:
                raise ValueError(
                    f"RandomSampler: range for {key!r} must satisfy low <= high, "
                    f"got ({low}, {high})"
                )
            frozen.append((key, (float(low), float(high))))
        return cls(ranges=tuple(frozen), base=_freeze_values(base, "RandomSampler"))

    def draw(self, index: int, rng: np.random.Generator) -> Dict[str, float]:
        values = dict(self.base)
        for key, (low, high) in self.ranges:
            values[key] = float(rng.uniform(low, high))
        return values


@dataclass(frozen=True)
class ScenarioWeight:
    """One entry of a fleet's scenario mix.

    ``scenario`` is a registered scenario name (resolved through
    :func:`repro.core.scenario.make_scenario`) or ``None`` for the plain
    homogeneous workload; ``overrides`` are extra factory keyword arguments
    (the sampler's parameter draws are passed too and take precedence on
    conflicts).
    """

    scenario: Optional[str]
    weight: float = 1.0
    overrides: Tuple[Tuple[str, object], ...] = ()

    @classmethod
    def of(
        cls, scenario: Optional[str], weight: float = 1.0, **overrides: object
    ) -> "ScenarioWeight":
        return cls(
            scenario=scenario,
            weight=weight,
            overrides=tuple(sorted(overrides.items())),
        )

    def __post_init__(self) -> None:
        if not self.weight > 0:
            raise ValueError(f"scenario weight must be > 0, got {self.weight}")

    @property
    def label(self) -> str:
        return self.scenario if self.scenario is not None else PLAIN_LABEL


@dataclass(frozen=True)
class FleetSpec:
    """A frozen description of one multi-swarm workload."""

    name: str
    num_swarms: int
    sampler: ParameterSampler = field(default_factory=FixedSampler)
    scenario_mix: Tuple[ScenarioWeight, ...] = ()
    horizon: float = 60.0
    sample_interval: Optional[float] = None
    max_events: Optional[int] = None
    max_population: Optional[int] = 50_000
    backend: str = "array"
    #: Pre-seed every swarm with a one-club of this size (0 = start empty);
    #: in classed scenarios the pre-seeded peers belong to class 0.
    initial_club_size: int = 0
    #: A swarm counts as *captured* when its final one-club holds at least
    #: ``capture_fraction`` of the final population and at least
    #: ``capture_min_club`` peers.
    capture_fraction: float = 0.5
    capture_min_club: int = 10

    def __post_init__(self) -> None:
        if self.num_swarms < 1:
            raise ValueError(f"num_swarms must be >= 1, got {self.num_swarms}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if self.backend not in ("object", "array"):
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"('object', 'array')"
            )
        if self.initial_club_size < 0:
            raise ValueError("initial_club_size must be >= 0")
        if not 0.0 < self.capture_fraction <= 1.0:
            raise ValueError("capture_fraction must be in (0, 1]")
        object.__setattr__(self, "scenario_mix", tuple(self.scenario_mix))

    def mix_cumprobs(self) -> Optional[np.ndarray]:
        """Cumulative scenario-mix probabilities (None when mix is empty)."""
        if not self.scenario_mix:
            return None
        weights = np.array([entry.weight for entry in self.scenario_mix])
        return np.cumsum(weights / weights.sum())


@dataclass(frozen=True)
class SwarmTask:
    """One materialized swarm of a fleet (picklable work item)."""

    index: int
    params: SystemParameters
    scenario: Optional[ScenarioSpec]
    scenario_label: str
    seed: np.random.SeedSequence


def normalize_fleet_seed(seed: SeedLike):
    """Reduce any ``SeedLike`` to a pure, picklable master-seed token.

    Spawning from a caller-supplied ``SeedSequence`` would mutate it
    (advancing ``n_children_spawned``), so a later re-materialization — e.g.
    resuming from a checkpoint that pickled the mutated object — would
    derive *different* swarms.  Instead the sequence is reduced to its
    ``(entropy, spawn_key)`` identity and rebuilt fresh on every use.
    ``None`` is pinned to freshly drawn entropy once (so the token, and any
    checkpoint storing it, stays reproducible), and a ``Generator`` is
    consumed once for a 63-bit integer.  Tokens normalize to themselves.
    """
    if isinstance(seed, dict) and "entropy" in seed:
        return seed
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**63 - 1))
    if isinstance(seed, np.random.SeedSequence):
        return {"entropy": seed.entropy, "spawn_key": tuple(seed.spawn_key)}
    if seed is None:
        return np.random.SeedSequence().entropy
    return int(seed)


def _root_sequence(token) -> np.random.SeedSequence:
    """A fresh root ``SeedSequence`` for a normalized seed token."""
    if isinstance(token, dict):
        return np.random.SeedSequence(
            token["entropy"], spawn_key=tuple(token["spawn_key"])
        )
    return np.random.SeedSequence(token)


def task_for_point(
    index: int,
    simulation_seq: np.random.SeedSequence,
    params_kwargs: Mapping[str, float],
    choice: ScenarioWeight,
) -> SwarmTask:
    """Build one :class:`SwarmTask` from an explicit parameter/scenario point.

    The shared assembly step of :func:`materialize_tasks` (which *samples*
    points) and the adaptive driver (which *chooses* points by acquisition):
    ``params_kwargs`` wins over the mix entry's factory overrides on
    conflicts, for the plain workload and named scenarios alike.
    """
    params_kwargs = dict(params_kwargs)
    if "num_pieces" in params_kwargs:
        params_kwargs["num_pieces"] = int(params_kwargs["num_pieces"])
    if choice.scenario is None:
        params = base_params(**{**dict(choice.overrides), **params_kwargs})
        scenario = None
    else:
        scenario = make_scenario(
            choice.scenario, **{**dict(choice.overrides), **params_kwargs}
        )
        params = scenario.params
    return SwarmTask(
        index=index,
        params=params,
        scenario=scenario,
        scenario_label=choice.label,
        seed=simulation_seq,
    )


#: Memo of fully materialized task lists keyed by ``(spec, seed token)``.
#: Tasks are frozen and nothing mutates ``task.seed`` (simulators build
#: their Generator without spawning), so sharing the objects across calls
#: is safe — and the adaptive driver / bench harness re-materialize the
#: same spec every round, which made this a measurable fixed cost.
_MATERIALIZE_MEMO: Dict[Tuple, List[SwarmTask]] = {}
_MATERIALIZE_MEMO_MAX = 8


def materialize_tasks(spec: FleetSpec, seed: SeedLike = 0) -> List[SwarmTask]:
    """Expand a spec into its deterministic per-swarm task list.

    Assignment draws (sampler + scenario choice) and simulation seeds are
    derived per swarm from ``SeedSequence.spawn`` on a fresh root built via
    :func:`normalize_fleet_seed`, so the task list — and therefore the whole
    fleet outcome — is a pure function of ``(spec, seed token)``,
    independent of worker count, chunking, and how often it is called.
    """
    token = normalize_fleet_seed(seed)
    memo_key: Optional[Tuple] = None
    if isinstance(token, dict):
        hashable_token = (token["entropy"], tuple(token["spawn_key"]))
    else:
        hashable_token = token
    try:
        cached = _MATERIALIZE_MEMO.get((spec, hashable_token))
    except TypeError:  # unhashable sampler/override payloads: skip the memo
        cached = None
    else:
        memo_key = (spec, hashable_token)
        if cached is not None:
            return list(cached)
    root = _root_sequence(token)
    children = root.spawn(spec.num_swarms)
    cumprobs = spec.mix_cumprobs()
    tasks: List[SwarmTask] = []
    # Swarms landing on the same (parameter point, mix entry) produce
    # value-identical params/scenario objects; share one instance per
    # distinct point instead of rebuilding it per swarm.  Pickling a chunk
    # of tasks preserves the sharing, so worker-side identity-keyed caches
    # (e.g. the theory-verdict memo) hit across the chunk too.
    templates: Dict[Tuple, SwarmTask] = {}
    for index, child in enumerate(children):
        assignment_seq, simulation_seq = child.spawn(2)
        assignment_rng = np.random.default_rng(assignment_seq)
        params_kwargs = spec.sampler.draw(index, assignment_rng)
        if cumprobs is None:
            choice = ScenarioWeight(scenario=None)
        elif len(spec.scenario_mix) == 1:
            choice = spec.scenario_mix[0]
        else:
            position = min(
                int(np.searchsorted(cumprobs, assignment_rng.uniform(), side="right")),
                len(cumprobs) - 1,
            )
            choice = spec.scenario_mix[position]
        point = (tuple(sorted(params_kwargs.items())), choice)
        try:
            template = templates.get(point)
        except TypeError:  # unhashable factory override: skip sharing
            template = None
            point = None
        if template is None:
            task = task_for_point(index, simulation_seq, params_kwargs, choice)
            if point is not None:
                templates[point] = task
        else:
            task = SwarmTask(
                index=index,
                params=template.params,
                scenario=template.scenario,
                scenario_label=template.scenario_label,
                seed=simulation_seq,
            )
        tasks.append(task)
    if memo_key is not None:
        if len(_MATERIALIZE_MEMO) >= _MATERIALIZE_MEMO_MAX:
            _MATERIALIZE_MEMO.clear()
        _MATERIALIZE_MEMO[memo_key] = tasks
        return list(tasks)
    return tasks


__all__ = [
    "FixedSampler",
    "FleetSpec",
    "GridSampler",
    "PLAIN_LABEL",
    "ParameterSampler",
    "RandomSampler",
    "SAMPLABLE_FIELDS",
    "ScenarioWeight",
    "SwarmTask",
    "materialize_tasks",
    "normalize_fleet_seed",
    "task_for_point",
]
