"""Log-structured fleet persistence: checksummed, segmented JSONL records.

A fleet run (fixed :class:`~repro.fleet.scheduler.FleetScheduler` or adaptive
:class:`~repro.fleet.adaptive.AdaptiveFleetDriver`) appends each finished
swarm's :class:`~repro.fleet.result.FleetSwarmRecord` to a plain-text JSONL
log as it completes:

* line 1 of every file is a schema-versioned **header** (spec name, swarm
  target, the normalized master-seed token, and the file's segment index /
  record base), so every file is self-describing;
* every subsequent line is one swarm record, written in swarm-index order
  and fsync'd in batches — a running fleet can be followed live with
  ``tail -f`` and its census rebuilt at any time via
  :meth:`repro.fleet.result.FleetResult.from_log`;
* every record (and census) line carries a **CRC32 checksum** over its
  canonical JSON payload, so bit rot anywhere in the middle of a log is
  *detected*, never silently folded into a result;
* with ``rotate_every``, the active file rotates into numbered **closed
  segments** (``fleet.jsonl.seg000000``, ...) so month-scale runs never
  grow one unbounded file, and ``compact_after`` (or an explicit
  :func:`compact_log`) merges closed segments into one columnar
  **census snapshot** (``fleet.jsonl.compact``) — lossless, so
  ``from_log`` / resume / fingerprints are exact across compaction;
* checkpoints no longer carry the record list: they shrink to a
  ``(segment, byte offset)`` pointer into this log (plus the in-flight
  kernel snapshot), and resume truncates the log back to the checkpointed
  position so the two can never disagree.

Crash behaviour is append-only-log standard: a partially written *last*
line of the *active* file (the process died mid-append) is discarded on
read, not fatal; corruption anywhere before the tail, or a
schema-version mismatch, raises :class:`FleetLogError` with a pointed
message — unless the reader opts into ``strict=False`` **salvage mode**,
which skips checksum-failing interior lines with a warning and returns
whatever survived.  Schema-1 logs (written before checksums existed) are
still read; their lines simply carry no checksum to verify.
"""

from __future__ import annotations

import json
import os
import warnings
import zlib
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .faults import FaultState, InjectedFsyncFailure, InjectedTornWrite, kill_self
from .result import FleetSwarmRecord

#: Version tag of the JSONL fleet-log schema.  Schema 2 added per-line
#: CRC32 checksums, segment headers (``segment`` / ``base_records``) and
#: columnar census snapshots; schema-1 logs are still readable (their
#: lines predate checksums, so there is nothing to verify).
FLEET_LOG_SCHEMA = 2

_READABLE_SCHEMAS = (1, 2)

_HEADER_KIND = "fleet-log"
_RECORD_KIND = "swarm"
_CENSUS_KIND = "census"

_RECORD_FIELDS = tuple(spec.name for spec in fields(FleetSwarmRecord))


class FleetLogError(ValueError):
    """A fleet log is unreadable: wrong schema, corrupt line, bad header."""


def _crc_of(payload: dict) -> int:
    """CRC32 of the canonical (sorted-keys) JSON dump of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True).encode("utf-8")
    return zlib.crc32(canonical) & 0xFFFFFFFF


def _crc_ok(payload: dict) -> bool:
    """Verify a line's checksum; lines without one (schema 1) pass."""
    crc = payload.get("crc")
    if crc is None:
        return True
    rest = {key: value for key, value in payload.items() if key != "crc"}
    return _crc_of(rest) == crc


@dataclass(frozen=True)
class FleetLogHeader:
    """First line of every fleet-log file (pure data, JSON-serializable)."""

    schema: int
    spec_name: str
    num_swarms: int
    seed: Any  # normalized master-seed token (int or {entropy, spawn_key})
    #: Index of the segment this file holds (0 for an unrotated log).
    segment: int = 0
    #: Number of records that live in *earlier* segments (or the compact
    #: snapshot); the first record of this file has this swarm index.
    base_records: int = 0

    def to_json(self) -> str:
        payload = {"kind": _HEADER_KIND, **asdict(self)}
        if isinstance(payload["seed"], dict):
            payload["seed"] = {
                "entropy": payload["seed"]["entropy"],
                "spawn_key": list(payload["seed"]["spawn_key"]),
            }
        payload["crc"] = _crc_of(payload)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict, path: Path) -> "FleetLogHeader":
        if payload.get("kind") != _HEADER_KIND:
            raise FleetLogError(
                f"{path}: first line is not a fleet-log header "
                f"(kind={payload.get('kind')!r})"
            )
        schema = payload.get("schema")
        if schema not in _READABLE_SCHEMAS:
            raise FleetLogError(
                f"{path}: unsupported fleet-log schema {schema!r} "
                f"(this build reads schemas {list(_READABLE_SCHEMAS)}); "
                "re-run the fleet or use a matching repro version"
            )
        if not _crc_ok(payload):
            raise FleetLogError(
                f"{path}: fleet-log header failed its CRC32 checksum (corrupt)"
            )
        seed = payload.get("seed")
        if isinstance(seed, dict):
            seed = {
                "entropy": seed["entropy"],
                "spawn_key": tuple(seed["spawn_key"]),
            }
        return cls(
            schema=schema,
            spec_name=payload.get("spec_name", ""),
            num_swarms=int(payload.get("num_swarms", 0)),
            seed=seed,
            segment=int(payload.get("segment", 0)),
            base_records=int(payload.get("base_records", 0)),
        )


def record_to_json(record: FleetSwarmRecord) -> str:
    """One swarm record as a single checksummed JSON line (no newline)."""
    payload = {"kind": _RECORD_KIND, **asdict(record)}
    payload["crc"] = _crc_of(payload)
    return json.dumps(payload, sort_keys=True)


def record_from_payload(payload: dict, path: Path, line: int) -> FleetSwarmRecord:
    if payload.get("kind") != _RECORD_KIND:
        raise FleetLogError(
            f"{path}:{line}: expected a swarm record, got kind={payload.get('kind')!r}"
        )
    data = {
        key: value
        for key, value in payload.items()
        if key not in ("kind", "crc")
    }
    try:
        data["sojourn_hist"] = tuple(data["sojourn_hist"])
        data["download_hist"] = tuple(data["download_hist"])
        return FleetSwarmRecord(**data)
    except (KeyError, TypeError) as error:
        raise FleetLogError(f"{path}:{line}: malformed swarm record: {error}") from error


def census_to_json(records: List[FleetSwarmRecord]) -> str:
    """A compacted run of records as one columnar census line.

    Columnar (one list per record field) and **lossless**: every record
    round-trips exactly, so compaction never changes what ``from_log``,
    a resumed run, or a fingerprint sees — it only stops paying the
    repeated JSON keys of thousands of individual lines.
    """
    columns = {
        name: [getattr(record, name) for record in records]
        for name in _RECORD_FIELDS
    }
    payload = {
        "kind": _CENSUS_KIND,
        "num_records": len(records),
        "captured": sum(int(record.captured) for record in records),
        "failed": sum(int(record.failed) for record in records),
        "columns": columns,
    }
    payload["crc"] = _crc_of(payload)
    return json.dumps(payload, sort_keys=True)


def records_from_census(
    payload: dict, path: Path, line: int
) -> List[FleetSwarmRecord]:
    """Expand one census snapshot line back into its exact records."""
    columns = payload.get("columns") or {}
    try:
        count = int(payload["num_records"])
        records = []
        for i in range(count):
            data = {
                name: columns[name][i] for name in _RECORD_FIELDS if name in columns
            }
            data["sojourn_hist"] = tuple(data.get("sojourn_hist", ()))
            data["download_hist"] = tuple(data.get("download_hist", ()))
            records.append(FleetSwarmRecord(**data))
        return records
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise FleetLogError(
            f"{path}:{line}: malformed census snapshot: {error}"
        ) from error


# -- file layout --------------------------------------------------------------


def segment_path(path: Union[str, Path], index: int) -> Path:
    """The file a closed segment rotates to (``<log>.seg000042``)."""
    target = Path(path)
    return target.with_name(f"{target.name}.seg{index:06d}")


def compact_path(path: Union[str, Path]) -> Path:
    """The census-snapshot file compaction merges closed segments into."""
    target = Path(path)
    return target.with_name(target.name + ".compact")


def _discover(path: Path) -> Tuple[Optional[Path], Dict[int, Path], bool]:
    """The on-disk pieces of a segmented log: (compact, closed, active?)."""
    marker = path.name + ".seg"
    closed: Dict[int, Path] = {}
    if path.parent.exists():
        for entry in path.parent.iterdir():
            name = entry.name
            if name.startswith(marker) and name[len(marker):].isdigit():
                closed[int(name[len(marker):])] = entry
    compacted = compact_path(path)
    return (compacted if compacted.exists() else None, closed, path.exists())


def _fsync_dir(directory: Path) -> None:
    """Fsync a directory so a rename is durable (best-effort on exotic FS)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class FleetLogWriter:
    """Append-only JSONL writer: batched fsync, rotation, exact resume.

    ``resume_offset=None`` creates/truncates the active file (and clears
    any stale closed segments of a previous run) and writes a fresh
    header; an integer offset reopens an existing log, truncates anything
    past ``(resume_segment, resume_offset)`` (records written after the
    last checkpoint are re-run deterministically, so dropping them is
    safe) and appends from there.  When the checkpointed segment was
    already compacted away, ``resume_records`` rebuilds the log prefix
    from the compact snapshot instead — resume stays exact across
    rotation *and* compaction.

    ``fsync_every_n`` trades durability for throughput: the writer flushes
    every append (so ``tail -f`` stays live) but only pays the ``fsync``
    once at least that many records have accumulated since the last sync.
    The default of 1 keeps the original fsync-per-append durability.  A
    crash can lose at most the unsynced tail, which — like any truncated
    tail — re-runs deterministically on resume.

    ``rotate_every`` closes the active file into a numbered segment once
    it holds that many records; ``compact_after`` additionally merges the
    closed segments into the census snapshot once that many have piled up.

    :attr:`offset` is the byte offset (within the *active* segment) after
    the last *fsync'd* batch — the value a checkpoint may safely store
    together with :attr:`segment`; checkpoint writers call :meth:`sync`
    first so the offset covers everything appended.

    ``faults`` threads a :class:`~repro.fleet.faults.FaultState` through
    the write path (torn appends, failed fsyncs, kill points); the
    ``None`` default costs nothing.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: FleetLogHeader,
        resume_offset: Optional[int] = None,
        fsync_every_n: int = 1,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        resume_segment: int = 0,
        resume_records: Optional[int] = None,
        faults: Optional[FaultState] = None,
    ):
        if fsync_every_n < 1:
            raise ValueError(f"fsync_every_n must be >= 1, got {fsync_every_n}")
        if rotate_every is not None and rotate_every < 1:
            raise ValueError(f"rotate_every must be >= 1, got {rotate_every}")
        if compact_after is not None and compact_after < 1:
            raise ValueError(f"compact_after must be >= 1, got {compact_after}")
        self.fsync_every_n = fsync_every_n
        self.rotate_every = rotate_every
        self.compact_after = compact_after
        self.faults = faults
        self._unsynced_records = 0
        self.path = Path(path)
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume_offset is None:
            stale_compact, stale_closed, _ = _discover(self.path)
            if stale_compact is not None:
                stale_compact.unlink()
            for stale in stale_closed.values():
                stale.unlink()
            self.segment = 0
            self._base_records = 0
            self._records_in_segment = 0
            self._handle = self.path.open("wb")
            self._write_header()
            self._sync()
        else:
            self._prepare_resume(resume_segment, resume_offset, resume_records)
        self.offset = self._handle.tell()

    # -- resume ---------------------------------------------------------------

    def _prepare_resume(
        self, segment: int, offset: int, num_records: Optional[int]
    ) -> None:
        compacted, closed, active_exists = _discover(self.path)
        if not (active_exists or closed or compacted):
            raise FleetLogError(
                f"cannot resume fleet log {self.path}: file does not exist"
            )
        if active_exists:
            probe: Path = self.path
        elif closed:
            probe = closed[min(closed)]
        else:
            probe = compacted  # type: ignore[assignment]
        existing = read_header(probe)
        if existing.seed != self.header.seed:
            raise FleetLogError(
                f"{self.path}: log header seed {existing.seed!r} does "
                f"not match the resuming run's seed {self.header.seed!r}"
            )
        if active_exists:
            active_index = read_header(self.path).segment
        else:
            active_index = (max(closed) + 1) if closed else 0
        if segment == active_index and active_exists:
            for index in sorted(closed):
                if index >= active_index:
                    closed[index].unlink()
            self._reopen_active(offset)
        elif segment in closed:
            # The checkpoint points into a closed segment: everything after
            # it is post-checkpoint work, so reinstate it as the active file
            # and drop the newer segments.
            if active_exists:
                self.path.unlink()
            for index in sorted(closed):
                if index > segment:
                    closed[index].unlink()
            os.replace(closed[segment], self.path)
            _fsync_dir(self.path.parent)
            self._reopen_active(offset)
        else:
            # The checkpointed segment was compacted away; the byte offset
            # is meaningless now, but the record count identifies the exact
            # prefix — rebuild the compact snapshot to hold precisely it.
            if num_records is None:
                raise FleetLogError(
                    f"{self.path}: segment {segment} no longer exists "
                    f"(compacted) and no record count was given to rebuild "
                    f"the prefix from"
                )
            log = read_log(self.path, max_records=num_records)
            if len(log.records) < num_records:
                raise FleetLogError(
                    f"{self.path} holds {len(log.records)} records but the "
                    f"resume expects {num_records}"
                )
            records = list(log.records[:num_records])
            new_index = active_index + 1
            snapshot_header = replace(
                self.header, schema=FLEET_LOG_SCHEMA, segment=0, base_records=0
            )
            target = compact_path(self.path)
            if records:
                _write_compact_file(target, snapshot_header, records)
            elif compacted is not None:
                target.unlink()
            if active_exists:
                self.path.unlink()
            for stale in closed.values():
                stale.unlink()
            _fsync_dir(self.path.parent)
            self.segment = new_index
            self._base_records = num_records
            self._records_in_segment = 0
            self._handle = self.path.open("wb")
            self._write_header()
            self._sync()

    def _reopen_active(self, offset: int) -> None:
        size = self.path.stat().st_size
        if offset > size:
            raise FleetLogError(
                f"{self.path}: resume offset {offset} is past the "
                f"end of the log ({size} bytes)"
            )
        self._handle = self.path.open("r+b")
        self._handle.truncate(offset)
        self._handle.seek(offset)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        active_header = read_header(self.path)
        self.segment = active_header.segment
        self._base_records = active_header.base_records
        with self.path.open("rb") as handle:
            raw = handle.read()
        # Complete (newline-terminated) lines minus the header line.
        self._records_in_segment = max(raw.count(b"\n") - 1, 0)

    # -- writing --------------------------------------------------------------

    @property
    def total_records(self) -> int:
        """Records appended across every segment of this log."""
        return self._base_records + self._records_in_segment

    def _write_header(self) -> None:
        stamped = replace(
            self.header,
            schema=FLEET_LOG_SCHEMA,
            segment=self.segment,
            base_records=self._base_records,
        )
        self._handle.write((stamped.to_json() + "\n").encode("utf-8"))

    def append(self, records: List[FleetSwarmRecord]) -> int:
        """Append one batch of records (flushed; fsync'd per the knob).

        Returns the offset after the last fsync'd record — the safe
        checkpoint value, which lags the file end while a sync is pending.
        """
        for record in records:
            line = (record_to_json(record) + "\n").encode("utf-8")
            if self.faults is not None and self.faults.take_torn_append(
                record.index
            ):
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                raise InjectedTornWrite(
                    f"injected torn append at record {record.index}"
                )
            self._handle.write(line)
            self._records_in_segment += 1
            self._unsynced_records += 1
            if self.faults is not None and self.faults.take_kill_point(
                record.index
            ):
                # Make the record durable first — the kill tests assert the
                # resumed run continues from *after* this record.
                self._handle.flush()
                os.fsync(self._handle.fileno())
                kill_self()
            if (
                self.rotate_every is not None
                and self._records_in_segment >= self.rotate_every
            ):
                self._rotate()
        if self._unsynced_records >= self.fsync_every_n:
            self._sync()
            self.offset = self._handle.tell()
        elif records:
            self._handle.flush()
        return self.offset

    def _rotate(self) -> None:
        """Close the active file into a numbered segment and start fresh."""
        self._sync()
        self._handle.close()
        os.replace(self.path, segment_path(self.path, self.segment))
        _fsync_dir(self.path.parent)
        self._base_records += self._records_in_segment
        self._records_in_segment = 0
        self.segment += 1
        self._handle = self.path.open("wb")
        self._write_header()
        self._sync()
        self.offset = self._handle.tell()
        if self.compact_after is not None:
            _, closed, _ = _discover(self.path)
            if len(closed) >= self.compact_after:
                compact_log(self.path)

    def sync(self) -> int:
        """Force an fsync (e.g. before checkpointing); returns the offset."""
        self._sync()
        self.offset = self._handle.tell()
        return self.offset

    def _sync(self) -> None:
        self._handle.flush()
        if self.faults is not None and self.faults.take_failed_fsync(
            self.total_records
        ):
            raise InjectedFsyncFailure(
                f"injected fsync failure after {self.total_records} records"
            )
        os.fsync(self._handle.fileno())
        self._unsynced_records = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._sync()
            self._handle.close()

    def __enter__(self) -> "FleetLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class FleetLog:
    """A parsed fleet log: header, records, and per-record byte offsets."""

    header: FleetLogHeader
    records: Tuple[FleetSwarmRecord, ...]
    #: ``offsets[i]`` is the byte offset just *after* record ``i`` within
    #: the file that holds it — the value a checkpoint holding ``i + 1``
    #: records stores.  Records expanded from a census snapshot share the
    #: offset just past the snapshot line.
    offsets: Tuple[int, ...]
    #: Byte offset just after the header line of the last file read.
    header_end: int
    #: File names the log was assembled from, in read order.
    sources: Tuple[str, ...] = ()
    #: Lines skipped by salvage mode (``strict=False``); 0 when strict.
    salvaged: int = 0

    def offset_after(self, num_records: int) -> int:
        """Byte offset after the first ``num_records`` records (0 = header end)."""
        if num_records == 0:
            return self.header_end
        return self.offsets[num_records - 1]


def read_header(path: Union[str, Path]) -> FleetLogHeader:
    """Parse only a log file's header line (cheap, O(1) in the log size)."""
    target = Path(path)
    with target.open("rb") as handle:
        first = handle.readline()
    if not first.endswith(b"\n"):
        raise FleetLogError(f"{target}: empty or headerless fleet log")
    try:
        payload = json.loads(first.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FleetLogError(f"{target}:1: corrupt fleet-log header: {error}") from error
    return FleetLogHeader.from_payload(payload, target)


def _parse_source(
    source: Path,
    is_last: bool,
    strict: bool,
    consumed: int,
) -> Tuple[FleetLogHeader, List[FleetSwarmRecord], List[int], int, int, int]:
    """Parse one log file.

    Returns ``(header, records, offsets, header_end, consumed, salvaged)``
    where ``consumed`` counts every record the file *accounted for*
    (including salvage-skipped lines), which is what segment-continuity
    checks compare against ``base_records``.
    """
    with source.open("rb") as handle:
        raw = handle.read()
    lines = raw.split(b"\n")
    complete = lines[:-1]
    salvaged = 0
    if lines[-1] and not is_last:
        # Only the active (last) file may carry a crash-truncated tail; a
        # closed segment was fsync'd whole before rotation.
        message = f"{source}: truncated line inside a closed segment (corrupt)"
        if strict:
            raise FleetLogError(message)
        warnings.warn(message + "; dropping it", stacklevel=3)
        salvaged += 1
    if not complete:
        raise FleetLogError(f"{source}: empty or headerless fleet log")
    position = 0
    header: Optional[FleetLogHeader] = None
    header_end = 0
    records: List[FleetSwarmRecord] = []
    offsets: List[int] = []
    for line_number, line in enumerate(complete, start=1):
        position += len(line) + 1
        try:
            payload = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            # A partial write can only ever leave an *unterminated* tail
            # (handled above); a newline-terminated line that does not parse
            # is genuine corruption.
            if line_number == 1 or strict:
                raise FleetLogError(
                    f"{source}:{line_number}: corrupt fleet-log line: {error}"
                ) from error
            warnings.warn(
                f"{source}:{line_number}: skipping corrupt fleet-log line "
                f"({error})",
                stacklevel=3,
            )
            salvaged += 1
            consumed += 1
            continue
        if line_number == 1:
            header = FleetLogHeader.from_payload(payload, source)
            header_end = position
            continue
        kind = payload.get("kind")
        if kind == _CENSUS_KIND:
            if not _crc_ok(payload):
                message = (
                    f"{source}:{line_number}: census snapshot failed its "
                    f"CRC32 checksum — corrupt fleet-log line"
                )
                if strict:
                    raise FleetLogError(message)
                warnings.warn(message + "; its records are lost", stacklevel=3)
                salvaged += 1
                consumed += int(payload.get("num_records", 0) or 0)
                continue
            expanded = records_from_census(payload, source, line_number)
            records.extend(expanded)
            offsets.extend([position] * len(expanded))
            consumed += len(expanded)
            continue
        if not _crc_ok(payload):
            message = (
                f"{source}:{line_number}: record failed its CRC32 checksum "
                f"— corrupt fleet-log line"
            )
            if strict:
                raise FleetLogError(message)
            warnings.warn(message + "; skipping it", stacklevel=3)
            salvaged += 1
            consumed += 1
            continue
        records.append(record_from_payload(payload, source, line_number))
        offsets.append(position)
        consumed += 1
    if header is None:
        raise FleetLogError(f"{source}: empty or headerless fleet log")
    return header, records, offsets, header_end, consumed, salvaged


def read_log(
    path: Union[str, Path],
    max_records: Optional[int] = None,
    strict: bool = True,
) -> FleetLog:
    """Parse a (possibly segmented/compacted) fleet log.

    Reads the compact census snapshot (if any), then the closed segments
    in index order, then the active file, verifying every line's CRC32
    checksum and each segment's ``base_records`` continuity.  A last line
    of the *active* file without a trailing newline, or whose JSON is cut
    short, is the signature of a crash mid-append: it is discarded
    silently (the swarm it described re-runs deterministically on
    resume).  Anything malformed before the tail is genuine corruption
    and raises :class:`FleetLogError` — unless ``strict=False``, which
    *salvages* instead: checksum-failing or undecodable interior lines
    are skipped with a warning and the surviving records returned (the
    :class:`FleetLog` counts them in ``salvaged``).
    """
    target = Path(path)
    compacted, closed, active_exists = _discover(target)
    sources: List[Path] = []
    if compacted is not None:
        sources.append(compacted)
    sources.extend(closed[index] for index in sorted(closed))
    if active_exists or not sources:
        # A missing active file with no segments raises FileNotFoundError,
        # exactly like the unsegmented reader did.
        sources.append(target)
    header: Optional[FleetLogHeader] = None
    records: List[FleetSwarmRecord] = []
    offsets: List[int] = []
    header_end = 0
    consumed = 0
    salvaged = 0
    for position_in_chain, source in enumerate(sources):
        is_last = position_in_chain == len(sources) - 1
        (
            source_header,
            source_records,
            source_offsets,
            source_header_end,
            consumed_after,
            source_salvaged,
        ) = _parse_source(source, is_last, strict, consumed)
        if header is None:
            header = source_header
        elif source_header.seed != header.seed:
            raise FleetLogError(
                f"{source}: segment header seed {source_header.seed!r} does "
                f"not match the log's seed {header.seed!r}"
            )
        if source != compacted and source_header.base_records != consumed:
            message = (
                f"{source}: segment declares base_records="
                f"{source_header.base_records} but {consumed} records precede "
                f"it (missing or reordered segments)"
            )
            if strict:
                raise FleetLogError(message)
            warnings.warn(message, stacklevel=2)
        salvaged += source_salvaged
        records.extend(source_records)
        offsets.extend(source_offsets)
        header_end = source_header_end
        consumed = consumed_after
        if max_records is not None and len(records) >= max_records:
            records = records[:max_records]
            offsets = offsets[:max_records]
            break
    assert header is not None  # every parsed source has one
    return FleetLog(
        header=header,
        records=tuple(records),
        offsets=tuple(offsets),
        header_end=header_end,
        sources=tuple(source.name for source in sources),
        salvaged=salvaged,
    )


def _write_compact_file(
    target: Path, header: FleetLogHeader, records: List[FleetSwarmRecord]
) -> None:
    """Atomically (re)write the census snapshot file."""
    temp = target.with_name(target.name + ".tmp")
    with temp.open("wb") as handle:
        handle.write((header.to_json() + "\n").encode("utf-8"))
        handle.write((census_to_json(records) + "\n").encode("utf-8"))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    _fsync_dir(target.parent)


def compact_log(path: Union[str, Path]) -> int:
    """Merge a log's closed segments (and prior snapshot) into one census.

    Rewrites ``<log>.compact`` to hold every record of the existing
    snapshot plus all closed segments as one columnar census line, then
    removes the merged segment files.  Lossless and crash-atomic (temp
    file + fsync + ``os.replace`` + directory fsync): a crash at any
    point leaves either the old layout or the new one.  The active file
    is never touched.  Returns the number of records now in the snapshot
    (0 when there was nothing to compact).
    """
    target = Path(path)
    compacted, closed, _ = _discover(target)
    if not closed:
        return 0
    sources = ([compacted] if compacted is not None else []) + [
        closed[index] for index in sorted(closed)
    ]
    header: Optional[FleetLogHeader] = None
    records: List[FleetSwarmRecord] = []
    consumed = 0
    for source in sources:
        source_header, source_records, _offsets, _end, consumed, _salv = (
            _parse_source(source, is_last=False, strict=True, consumed=consumed)
        )
        if header is None:
            header = source_header
        if source != compacted and source_header.base_records != len(records):
            raise FleetLogError(
                f"{source}: segment declares base_records="
                f"{source_header.base_records} but {len(records)} records "
                f"precede it; refusing to compact a gapped log"
            )
        records.extend(source_records)
    assert header is not None
    snapshot_header = replace(
        header, schema=FLEET_LOG_SCHEMA, segment=0, base_records=0
    )
    _write_compact_file(compact_path(target), snapshot_header, records)
    for source in closed.values():
        source.unlink()
    _fsync_dir(target.parent)
    return len(records)


def tail_summary(path: Union[str, Path]) -> str:
    """One-line live status of a fleet log (for humans tailing a run)."""
    log = read_log(path)
    captured = sum(1 for record in log.records if record.captured)
    failed = sum(1 for record in log.records if record.failed)
    total = len(log.records)
    prevalence = captured / total if total else 0.0
    summary = (
        f"fleet {log.header.spec_name!r}: {total}/{log.header.num_swarms} "
        f"swarms logged, capture prevalence {prevalence:.1%}"
    )
    if failed:
        summary += f", {failed} failed"
    return summary


__all__ = [
    "FLEET_LOG_SCHEMA",
    "FleetLog",
    "FleetLogError",
    "FleetLogHeader",
    "FleetLogWriter",
    "census_to_json",
    "compact_log",
    "compact_path",
    "read_header",
    "read_log",
    "record_from_payload",
    "record_to_json",
    "records_from_census",
    "segment_path",
    "tail_summary",
]
