"""Log-structured fleet persistence: one JSONL record per completed swarm.

A fleet run (fixed :class:`~repro.fleet.scheduler.FleetScheduler` or adaptive
:class:`~repro.fleet.adaptive.AdaptiveFleetDriver`) appends each finished
swarm's :class:`~repro.fleet.result.FleetSwarmRecord` to a plain-text JSONL
log as it completes:

* line 1 is a schema-versioned **header** (spec name, swarm target, the
  normalized master-seed token), so a log is self-describing;
* every subsequent line is one swarm record, written in swarm-index order
  and fsync'd in batches — a running fleet can be followed live with
  ``tail -f`` and its census rebuilt at any time via
  :meth:`repro.fleet.result.FleetResult.from_log`;
* checkpoints no longer carry the record list: they shrink to a byte offset
  into this log (plus the in-flight kernel snapshot), and resume truncates
  the log back to the checkpointed offset so the two can never disagree.

Crash behaviour is append-only-log standard: a partially written *last* line
(the process died mid-append) is discarded on read, not fatal; corruption
anywhere before the tail, or a schema-version mismatch, raises
:class:`FleetLogError` with a pointed message.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from .result import FleetSwarmRecord

#: Version tag of the JSONL fleet-log schema.  Bump when record or header
#: fields change incompatibly; readers refuse logs from other versions.
FLEET_LOG_SCHEMA = 1

_HEADER_KIND = "fleet-log"
_RECORD_KIND = "swarm"


class FleetLogError(ValueError):
    """A fleet log is unreadable: wrong schema, corrupt line, bad header."""


@dataclass(frozen=True)
class FleetLogHeader:
    """First line of every fleet log (pure data, JSON-serializable)."""

    schema: int
    spec_name: str
    num_swarms: int
    seed: Any  # normalized master-seed token (int or {entropy, spawn_key})

    def to_json(self) -> str:
        payload = {"kind": _HEADER_KIND, **asdict(self)}
        if isinstance(payload["seed"], dict):
            payload["seed"] = {
                "entropy": payload["seed"]["entropy"],
                "spawn_key": list(payload["seed"]["spawn_key"]),
            }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_payload(cls, payload: dict, path: Path) -> "FleetLogHeader":
        if payload.get("kind") != _HEADER_KIND:
            raise FleetLogError(
                f"{path}: first line is not a fleet-log header "
                f"(kind={payload.get('kind')!r})"
            )
        schema = payload.get("schema")
        if schema != FLEET_LOG_SCHEMA:
            raise FleetLogError(
                f"{path}: unsupported fleet-log schema {schema!r} "
                f"(this build reads schema {FLEET_LOG_SCHEMA}); "
                "re-run the fleet or use a matching repro version"
            )
        seed = payload.get("seed")
        if isinstance(seed, dict):
            seed = {
                "entropy": seed["entropy"],
                "spawn_key": tuple(seed["spawn_key"]),
            }
        return cls(
            schema=schema,
            spec_name=payload.get("spec_name", ""),
            num_swarms=int(payload.get("num_swarms", 0)),
            seed=seed,
        )


def record_to_json(record: FleetSwarmRecord) -> str:
    """One swarm record as a single JSON line (no newline)."""
    payload = {"kind": _RECORD_KIND, **asdict(record)}
    return json.dumps(payload, sort_keys=True)


def record_from_payload(payload: dict, path: Path, line: int) -> FleetSwarmRecord:
    if payload.get("kind") != _RECORD_KIND:
        raise FleetLogError(
            f"{path}:{line}: expected a swarm record, got kind={payload.get('kind')!r}"
        )
    data = {key: value for key, value in payload.items() if key != "kind"}
    try:
        data["sojourn_hist"] = tuple(data["sojourn_hist"])
        data["download_hist"] = tuple(data["download_hist"])
        return FleetSwarmRecord(**data)
    except (KeyError, TypeError) as error:
        raise FleetLogError(f"{path}:{line}: malformed swarm record: {error}") from error


class FleetLogWriter:
    """Append-only JSONL writer with batched fsync and exact resume.

    ``resume_offset=None`` creates/truncates the file and writes a fresh
    header; an integer offset reopens an existing log, truncates anything
    past the offset (records written after the last checkpoint are re-run
    deterministically, so dropping them is safe) and appends from there.

    ``fsync_every_n`` trades durability for throughput: the writer flushes
    every append (so ``tail -f`` stays live) but only pays the ``fsync``
    once at least that many records have accumulated since the last sync.
    The default of 1 keeps the original fsync-per-append durability.  A
    crash can lose at most the unsynced tail, which — like any truncated
    tail — re-runs deterministically on resume.

    :attr:`offset` is the byte offset after the last *fsync'd* batch — the
    value a checkpoint may safely store; checkpoint writers call
    :meth:`sync` first so the offset covers everything appended.
    """

    def __init__(
        self,
        path: Union[str, Path],
        header: FleetLogHeader,
        resume_offset: Optional[int] = None,
        fsync_every_n: int = 1,
    ):
        if fsync_every_n < 1:
            raise ValueError(f"fsync_every_n must be >= 1, got {fsync_every_n}")
        self.fsync_every_n = fsync_every_n
        self._unsynced_records = 0
        self.path = Path(path)
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume_offset is None:
            self._handle = self.path.open("wb")
            self._handle.write((header.to_json() + "\n").encode("utf-8"))
            self._sync()
        else:
            if not self.path.exists():
                raise FleetLogError(
                    f"cannot resume fleet log {self.path}: file does not exist"
                )
            existing = read_header(self.path)
            if existing.seed != header.seed:
                raise FleetLogError(
                    f"{self.path}: log header seed {existing.seed!r} does "
                    f"not match the resuming run's seed {header.seed!r}"
                )
            if resume_offset > self.path.stat().st_size:
                raise FleetLogError(
                    f"{self.path}: resume offset {resume_offset} is past the "
                    f"end of the log ({self.path.stat().st_size} bytes)"
                )
            self._handle = self.path.open("r+b")
            self._handle.truncate(resume_offset)
            self._handle.seek(resume_offset)
            self._sync()
        self.offset = self._handle.tell()

    def append(self, records: List[FleetSwarmRecord]) -> int:
        """Append one batch of records (flushed; fsync'd per the knob).

        Returns the offset after the last fsync'd record — the safe
        checkpoint value, which lags the file end while a sync is pending.
        """
        if records:
            lines = "".join(record_to_json(record) + "\n" for record in records)
            self._handle.write(lines.encode("utf-8"))
            self._unsynced_records += len(records)
            if self._unsynced_records >= self.fsync_every_n:
                self._sync()
                self.offset = self._handle.tell()
            else:
                self._handle.flush()
        return self.offset

    def sync(self) -> int:
        """Force an fsync (e.g. before checkpointing); returns the offset."""
        self._sync()
        self.offset = self._handle.tell()
        return self.offset

    def _sync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced_records = 0

    def close(self) -> None:
        if not self._handle.closed:
            self._sync()
            self._handle.close()

    def __enter__(self) -> "FleetLogWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class FleetLog:
    """A parsed fleet log: header, records, and per-record byte offsets."""

    header: FleetLogHeader
    records: Tuple[FleetSwarmRecord, ...]
    #: ``offsets[i]`` is the byte offset just *after* record ``i`` — the
    #: value a checkpoint holding ``i + 1`` records stores.
    offsets: Tuple[int, ...]
    #: Byte offset just after the header line.
    header_end: int

    def offset_after(self, num_records: int) -> int:
        """Byte offset after the first ``num_records`` records (0 = header end)."""
        if num_records == 0:
            return self.header_end
        return self.offsets[num_records - 1]


def read_header(path: Union[str, Path]) -> FleetLogHeader:
    """Parse only a log's header line (cheap, O(1) in the log size)."""
    target = Path(path)
    with target.open("rb") as handle:
        first = handle.readline()
    if not first.endswith(b"\n"):
        raise FleetLogError(f"{target}: empty or headerless fleet log")
    try:
        payload = json.loads(first.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise FleetLogError(f"{target}:1: corrupt fleet-log header: {error}") from error
    return FleetLogHeader.from_payload(payload, target)


def read_log(
    path: Union[str, Path], max_records: Optional[int] = None
) -> FleetLog:
    """Parse a fleet log, tolerating a truncated final line.

    A last line without a trailing newline, or whose JSON is cut short, is
    the signature of a crash mid-append: it is discarded silently (the swarm
    it described re-runs deterministically on resume).  Anything malformed
    *before* the tail is genuine corruption and raises :class:`FleetLogError`.
    """
    target = Path(path)
    records: List[FleetSwarmRecord] = []
    offsets: List[int] = []
    with target.open("rb") as handle:
        raw = handle.read()
    lines = raw.split(b"\n")
    # A well-formed log ends with a newline, so the final split element is
    # empty; a non-empty final element is a truncated tail from a crash
    # mid-append and is discarded (that swarm re-runs deterministically).
    complete = lines[:-1]
    if not complete:
        raise FleetLogError(f"{target}: empty or headerless fleet log")
    position = 0
    header: Optional[FleetLogHeader] = None
    header_end = 0
    for line_number, line in enumerate(complete, start=1):
        position += len(line) + 1
        try:
            payload = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            # A partial write can only ever leave an *unterminated* tail
            # (handled above); a newline-terminated line that does not parse
            # is genuine corruption.
            raise FleetLogError(
                f"{target}:{line_number}: corrupt fleet-log line: {error}"
            ) from error
        if line_number == 1:
            header = FleetLogHeader.from_payload(payload, target)
            header_end = position
            continue
        records.append(record_from_payload(payload, target, line_number))
        offsets.append(position)
        if max_records is not None and len(records) >= max_records:
            break
    if header is None:
        raise FleetLogError(f"{target}: empty or headerless fleet log")
    return FleetLog(
        header=header,
        records=tuple(records),
        offsets=tuple(offsets),
        header_end=header_end,
    )


def tail_summary(path: Union[str, Path]) -> str:
    """One-line live status of a fleet log (for humans tailing a run)."""
    log = read_log(path)
    captured = sum(1 for record in log.records if record.captured)
    total = len(log.records)
    prevalence = captured / total if total else 0.0
    return (
        f"fleet {log.header.spec_name!r}: {total}/{log.header.num_swarms} "
        f"swarms logged, capture prevalence {prevalence:.1%}"
    )


__all__ = [
    "FLEET_LOG_SCHEMA",
    "FleetLog",
    "FleetLogError",
    "FleetLogHeader",
    "FleetLogWriter",
    "read_header",
    "read_log",
    "record_from_payload",
    "record_to_json",
    "tail_summary",
]
