"""Fleet aggregation: per-swarm records and the incremental FleetResult.

Workers reduce each finished swarm's :class:`~repro.swarm.metrics.SwarmMetrics`
stream to a compact, fully deterministic :class:`FleetSwarmRecord` — scalars
plus fixed-bin sojourn/download histograms — so a fleet of thousands of
swarms streams kilobytes, not metric arrays, back to the scheduler.  The
scheduler feeds records (in swarm-index order) into a :class:`FleetResult`,
which maintains the fleet-level census incrementally:

* **one-club prevalence** — the fraction of swarms captured by the
  missing-piece regime (final club ≥ ``capture_fraction`` of the population
  and ≥ ``capture_min_club`` peers),
* **sojourn / download-time distributions** — summed fixed-bin histograms,
* **theory-vs-outcome confusion counts** — the scenario-aware Theorem-1
  verdict (piecewise over schedule segments; ``out-of-theory`` for classed
  scenarios) against the empirical trajectory verdict,
* **per-scenario breakdown** of all of the above.

Records and aggregates contain no wall-clock data, so two runs of the same
``(spec, seed)`` — at any worker count, interrupted and resumed or not —
produce *equal* :class:`FleetResult` objects; the checkpoint tests compare
them with ``==``.
"""

from __future__ import annotations

from dataclasses import astuple, dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..analysis.tables import format_table
from ..core.schedule_stability import piecewise_stability
from ..core.stability import analyze
from ..markov.classify import classify_trajectory
from ..swarm.swarm import SwarmResult
from .spec import FleetSpec, SwarmTask

#: Upper edges of the sojourn / download-time histogram bins (time units);
#: the last bin is open-ended.
TIME_BIN_EDGES = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_TIME_BIN_EDGES_ARRAY = np.asarray(TIME_BIN_EDGES, dtype=np.float64)


def _histogram(values: List[float]) -> Tuple[int, ...]:
    if not values:
        return (0,) * (len(TIME_BIN_EDGES) + 1)
    # searchsorted(side="right") sends a value equal to an edge into the
    # next (right-open) bin, exactly like np.histogram over the
    # (0, e1], (e1, e2], ..., (e_last, inf) edge vector used previously —
    # but without histogram's per-call edge validation overhead.
    bins = np.searchsorted(
        _TIME_BIN_EDGES_ARRAY, np.asarray(values, dtype=np.float64), side="right"
    )
    counts = np.bincount(bins, minlength=len(TIME_BIN_EDGES) + 1)
    return tuple(int(c) for c in counts)


@dataclass(frozen=True)
class FleetSwarmRecord:
    """Deterministic summary of one finished swarm."""

    index: int
    scenario: str
    arrival_rate: float
    seed_rate: float
    peer_rate: float
    seed_departure_rate: float
    theory: str
    empirical: str
    captured: bool
    final_population: int
    final_one_club: int
    final_seeds: int
    events: int
    horizon_reached: bool
    sojourn_count: int
    sojourn_mean: float
    sojourn_hist: Tuple[int, ...]
    download_count: int
    download_mean: float
    download_hist: Tuple[int, ...]
    #: ``"ok"`` for a completed swarm, ``"failed"`` for one whose retries
    #: were exhausted and which degraded to a placeholder record.  The
    #: trailing defaults keep schema-1 log lines (which predate the
    #: fields) parsing unchanged.
    status: str = "ok"
    error: str = ""
    attempts: int = 0

    def key(self) -> Tuple:
        return astuple(self)

    @property
    def failed(self) -> bool:
        return self.status == "failed"


#: Identity-keyed memo of Theorem-1 verdicts.  ``SystemParameters`` holds a
#: dict (``arrival_rates``) and is unhashable, so the memo keys on object
#: identity and re-verifies the stored references on every hit — a recycled
#: ``id`` can never alias a stale verdict.  ``materialize_tasks`` shares one
#: params/scenario object per distinct mix choice (and pickling a chunk
#: preserves that sharing worker-side), so a fleet chunk computes each
#: distinct verdict once instead of once per swarm.
_VERDICT_MEMO: Dict[Tuple[int, int], Tuple[object, object, str]] = {}

_VERDICT_MEMO_MAX = 4096


def theory_verdict(task: SwarmTask) -> str:
    """Scenario-aware Theorem-1 verdict for one fleet task.

    Plain swarms get the classic constant-rate verdict; scenario swarms get
    the conservative piecewise whole-run verdict (``out-of-theory`` for
    heterogeneous classes).
    """
    key = (id(task.params), id(task.scenario))
    hit = _VERDICT_MEMO.get(key)
    if hit is not None and hit[0] is task.params and hit[1] is task.scenario:
        return hit[2]
    if task.scenario is None:
        verdict = analyze(task.params).verdict.value
    else:
        verdict = piecewise_stability(task.scenario).overall
    if len(_VERDICT_MEMO) >= _VERDICT_MEMO_MAX:
        _VERDICT_MEMO.clear()
    _VERDICT_MEMO[key] = (task.params, task.scenario, verdict)
    return verdict


def record_from_result(
    task: SwarmTask, spec: FleetSpec, result: SwarmResult
) -> FleetSwarmRecord:
    """Reduce one swarm's outcome to its fleet record (worker-side)."""
    metrics = result.metrics
    peak_arrival = (
        task.scenario.peak_arrival_rate
        if task.scenario is not None
        else task.params.lambda_total
    )
    classification = classify_trajectory(
        metrics.sample_times, metrics.population, arrival_rate=peak_arrival
    )
    final_population = metrics.final_population
    final_one_club = metrics.one_club_size[-1] if metrics.one_club_size else 0
    final_seeds = metrics.num_seeds[-1] if metrics.num_seeds else 0
    captured = (
        final_one_club >= spec.capture_min_club
        and final_one_club >= spec.capture_fraction * max(final_population, 1)
    )
    return FleetSwarmRecord(
        index=task.index,
        scenario=task.scenario_label,
        arrival_rate=task.params.lambda_total,
        seed_rate=task.params.seed_rate,
        peer_rate=task.params.peer_rate,
        seed_departure_rate=task.params.seed_departure_rate,
        theory=theory_verdict(task),
        empirical=classification.verdict.value,
        captured=captured,
        final_population=final_population,
        final_one_club=final_one_club,
        final_seeds=final_seeds,
        events=result.events_executed,
        horizon_reached=result.horizon_reached,
        sojourn_count=len(metrics.sojourn_times),
        sojourn_mean=(
            float(np.mean(metrics.sojourn_times)) if metrics.sojourn_times else 0.0
        ),
        sojourn_hist=_histogram(metrics.sojourn_times),
        download_count=len(metrics.download_times),
        download_mean=(
            float(np.mean(metrics.download_times)) if metrics.download_times else 0.0
        ),
        download_hist=_histogram(metrics.download_times),
    )


def failure_record(
    task: SwarmTask, spec: FleetSpec, error: str, attempts: int
) -> FleetSwarmRecord:
    """The schema-versioned ``failed`` placeholder for an exhausted swarm.

    Carries the task's full parameter point and theory verdict (both are
    pure functions of the spec) next to zeroed empirical fields, so a
    degraded fleet still reports *which* point failed and why — graceful
    degradation, never silent loss.  ``empirical="failed"`` keeps the
    record out of every capture statistic (``captured=False``, 0 events).
    """
    empty_hist = (0,) * (len(TIME_BIN_EDGES) + 1)
    return FleetSwarmRecord(
        index=task.index,
        scenario=task.scenario_label,
        arrival_rate=task.params.lambda_total,
        seed_rate=task.params.seed_rate,
        peer_rate=task.params.peer_rate,
        seed_departure_rate=task.params.seed_departure_rate,
        theory=theory_verdict(task),
        empirical="failed",
        captured=False,
        final_population=0,
        final_one_club=0,
        final_seeds=0,
        events=0,
        horizon_reached=False,
        sojourn_count=0,
        sojourn_mean=0.0,
        sojourn_hist=empty_hist,
        download_count=0,
        download_mean=0.0,
        download_hist=empty_hist,
        status="failed",
        error=error,
        attempts=attempts,
    )


@dataclass
class _ScenarioCensus:
    """Per-scenario incremental tallies."""

    swarms: int = 0
    captured: int = 0
    events: int = 0

    def add(self, record: FleetSwarmRecord) -> None:
        self.swarms += 1
        self.captured += int(record.captured)
        self.events += record.events


@dataclass
class FleetResult:
    """Incremental aggregate of a fleet run (equality is exact by value)."""

    spec_name: str
    num_swarms: int
    records: List[FleetSwarmRecord] = field(default_factory=list)
    complete: bool = False
    captured_count: int = 0
    failed_count: int = 0
    total_events: int = 0
    confusion: Dict[Tuple[str, str], int] = field(default_factory=dict)
    per_scenario: Dict[str, _ScenarioCensus] = field(default_factory=dict)
    sojourn_hist: Tuple[int, ...] = (0,) * (len(TIME_BIN_EDGES) + 1)
    download_hist: Tuple[int, ...] = (0,) * (len(TIME_BIN_EDGES) + 1)

    # -- streaming -----------------------------------------------------------

    def add(self, record: FleetSwarmRecord) -> None:
        """Fold one swarm record in; records must arrive in index order."""
        if record.index != len(self.records):
            raise ValueError(
                f"records must arrive in index order: got index {record.index}, "
                f"expected {len(self.records)}"
            )
        self.records.append(record)
        self.captured_count += int(record.captured)
        self.failed_count += int(record.failed)
        self.total_events += record.events
        pair = (record.theory, record.empirical)
        self.confusion[pair] = self.confusion.get(pair, 0) + 1
        self.per_scenario.setdefault(record.scenario, _ScenarioCensus()).add(record)
        self.sojourn_hist = tuple(
            a + b for a, b in zip(self.sojourn_hist, record.sojourn_hist)
        )
        self.download_hist = tuple(
            a + b for a, b in zip(self.download_hist, record.download_hist)
        )
        if len(self.records) == self.num_swarms:
            self.complete = True

    @classmethod
    def from_records(
        cls, spec_name: str, num_swarms: int, records: List[FleetSwarmRecord]
    ) -> "FleetResult":
        """Rebuild a result (e.g. from a checkpoint) by replaying records."""
        result = cls(spec_name=spec_name, num_swarms=num_swarms)
        for record in records:
            result.add(record)
        return result

    @classmethod
    def from_log(
        cls, path, max_records: "int | None" = None, strict: bool = True
    ) -> "FleetResult":
        """Rebuild the census of a (possibly still running) JSONL fleet log.

        Reads the log written by :class:`repro.fleet.persistence.FleetLogWriter`
        — following closed segments and compacted census snapshots, and
        tolerating a truncated tail line — and replays its records, so the
        reconstruction equals the census the run streamed incrementally.
        ``max_records`` truncates the replay (e.g. to a checkpoint's
        ``num_records``).  ``strict=False`` salvages a damaged log: records
        that fail their checksum are skipped with a warning and the replay
        folds the longest index-contiguous prefix of what survived.
        """
        # Local import: persistence imports FleetSwarmRecord from this module.
        from .persistence import read_log

        log = read_log(path, max_records=max_records, strict=strict)
        records: List[FleetSwarmRecord] = []
        for record in log.records:
            if record.index != len(records):
                if strict:
                    break  # from_records would raise; keep the prefix contract
                import warnings

                warnings.warn(
                    f"fleet log {path}: record index jumped from "
                    f"{len(records)} to {record.index}; replay stops at the "
                    f"contiguous prefix",
                    stacklevel=2,
                )
                break
            records.append(record)
        return cls.from_records(log.header.spec_name, log.header.num_swarms, records)

    # -- aggregates ----------------------------------------------------------

    def prevalence(self) -> float:
        """Fraction of completed swarms captured by the one-club regime."""
        if not self.records:
            return 0.0
        return self.captured_count / len(self.records)

    def failures(self) -> List[FleetSwarmRecord]:
        """The ``failed`` placeholder records (exhausted-retry swarms)."""
        return [record for record in self.records if record.failed]

    def mean_sojourn_time(self) -> float:
        """Departure-weighted mean sojourn time across the fleet."""
        total = sum(r.sojourn_count for r in self.records)
        if total == 0:
            return float("nan")
        return sum(r.sojourn_mean * r.sojourn_count for r in self.records) / total

    def mean_download_time(self) -> float:
        """Completion-weighted mean download time across the fleet."""
        total = sum(r.download_count for r in self.records)
        if total == 0:
            return float("nan")
        return sum(r.download_mean * r.download_count for r in self.records) / total

    def fingerprint(self) -> Tuple:
        """Order-stable value identity (used by checkpoint-equality tests)."""
        return (
            self.spec_name,
            self.num_swarms,
            self.complete,
            tuple(record.key() for record in self.records),
        )

    # -- reporting -----------------------------------------------------------

    def confusion_table(self) -> str:
        rows = [
            (theory, empirical, count)
            for (theory, empirical), count in sorted(self.confusion.items())
        ]
        return format_table(
            headers=["theory", "empirical", "swarms"],
            rows=rows,
            title="Theorem-1 verdict vs. empirical outcome",
        )

    def report(self) -> str:
        """Multi-table human-readable fleet summary."""
        failed = f", {self.failed_count} failed" if self.failed_count else ""
        lines = [
            f"fleet {self.spec_name!r}: {len(self.records)}/{self.num_swarms} "
            f"swarms, one-club prevalence {self.prevalence():.1%}, "
            f"{self.total_events} events{failed}",
        ]
        scenario_rows = [
            (
                name,
                census.swarms,
                census.captured,
                census.captured / census.swarms if census.swarms else 0.0,
                census.events,
            )
            for name, census in sorted(self.per_scenario.items())
        ]
        lines.append(
            format_table(
                headers=["scenario", "swarms", "captured", "prevalence", "events"],
                rows=scenario_rows,
                title="Per-scenario capture census",
            )
        )
        lines.append(self.confusion_table())
        edges = ("<=0.5",) + tuple(
            f"<={edge:g}" for edge in TIME_BIN_EDGES[1:]
        ) + (">last",)
        lines.append(
            format_table(
                headers=["bin"] + list(edges),
                rows=[
                    ["sojourn"] + list(self.sojourn_hist),
                    ["download"] + list(self.download_hist),
                ],
                title="Sojourn / download-time distributions (departed peers)",
            )
        )
        return "\n\n".join(lines)


__all__ = [
    "FleetResult",
    "FleetSwarmRecord",
    "TIME_BIN_EDGES",
    "failure_record",
    "record_from_result",
    "theory_verdict",
]
