"""Fleet scheduler: shard swarms over workers, stream to a log, resume.

:class:`FleetScheduler` executes a :class:`~repro.fleet.spec.FleetSpec`:

* **sharding** — the materialized swarm tasks are grouped into chunks of
  ``chunk_size`` consecutive swarms and mapped over
  :func:`repro.experiments.runner.map_tasks` (the same process-pool
  primitive :class:`~repro.experiments.runner.BatchRunner` uses), so many
  short swarms amortize one worker dispatch; with ``stacked=True`` each
  chunk runs inside one :class:`~repro.swarm.stacked.StackedSwarmKernel`
  (bit-identical trajectories, higher throughput) instead of one solo
  kernel per swarm;
* **streaming aggregation** — each finished chunk's
  :class:`~repro.fleet.result.FleetSwarmRecord`\\ s are folded into the
  incremental :class:`~repro.fleet.result.FleetResult` strictly in swarm
  order, so the outcome is a pure function of ``(spec, seed)`` regardless of
  worker count or chunking;
* **log-structured persistence** — with a ``log_path`` (or implicitly with a
  ``checkpoint_path``), every completed swarm is appended to a
  schema-versioned JSONL log (:mod:`repro.fleet.persistence`) as it
  finishes, fsync'd per chunk by default (``fsync_every_n`` batches the
  fsyncs for throughput): a running fleet can be tailed live
  (``tail -f``) and its census rebuilt at any time via
  :meth:`FleetResult.from_log`;
* **checkpoint / resume** — with a ``checkpoint_path``, progress is saved
  after every ``checkpoint_every`` chunks (atomically; see
  :mod:`repro.fleet.checkpoint`).  A checkpoint is just a byte offset into
  the log plus, when the run stopped mid-swarm, the suspended simulator's
  kernel snapshot (``suspend_after_events`` / ``capture_state``).
  :meth:`FleetScheduler.resume` / :func:`resume_fleet` reload the
  checkpoint, replay the log prefix and continue to the *exact*
  ``FleetResult`` of an uninterrupted run.

``run(stop_after_swarms=..., suspend_after_events=...)`` exposes the
interruption points deterministically, which is how the tests (and the CI
smoke step) "kill" a fleet mid-run without process signals.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.state import SystemState
from ..simulation.rng import SeedLike
from ..swarm.swarm import make_simulator, unsupported_option
from .checkpoint import (
    FleetCheckpoint,
    default_log_path,
    load_checkpoint,
    save_checkpoint,
)
from .faults import FaultPlan, FaultState, fire_task_faults
from .persistence import FLEET_LOG_SCHEMA, FleetLogHeader, FleetLogWriter, read_log
from .result import (
    FleetResult,
    FleetSwarmRecord,
    failure_record,
    record_from_result,
)
from .spec import FleetSpec, SwarmTask, materialize_tasks, normalize_fleet_seed


def _build_simulator(spec: FleetSpec, task: SwarmTask):
    return make_simulator(
        task.params,
        seed=np.random.default_rng(task.seed),
        backend=spec.backend,
        scenario=task.scenario,
    )


def _run_swarm_task(
    spec: FleetSpec,
    task: SwarmTask,
    suspend_after_events: Optional[int] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    """Run (or resume) one swarm; returns a record, or a kernel snapshot
    when the run suspended at ``suspend_after_events``."""
    fire_task_faults(faults, task.index, attempt)
    simulator = _build_simulator(spec, task)
    run_kwargs = dict(
        sample_interval=spec.sample_interval,
        max_events=spec.max_events,
        max_population=spec.max_population,
    )
    if snapshot is not None:
        simulator.restore_state(snapshot)
        result = simulator.run(spec.horizon, resume=True, **run_kwargs)
    else:
        initial = (
            SystemState.one_club(task.params.num_pieces, spec.initial_club_size)
            if spec.initial_club_size
            else None
        )
        result = simulator.run(
            spec.horizon,
            initial_state=initial,
            suspend_after_events=suspend_after_events,
            **run_kwargs,
        )
    if result.suspended:
        return simulator.capture_state()
    return record_from_result(task, spec, result)


def _run_fleet_chunk(job, attempt: int = 0) -> List[FleetSwarmRecord]:
    """Top-level pool worker: run one chunk of consecutive swarms.

    ``job`` is ``(spec, tasks, fault_plan)``; the plan (``None`` in
    production) fires planned task faults keyed on ``(swarm index,
    attempt)``, so a retried chunk deterministically clears its one-shot
    failures while poison tasks keep failing.
    """
    spec, tasks, plan = job
    return [
        _run_swarm_task(spec, task, faults=plan, attempt=attempt)
        for task in tasks
    ]


def _run_stacked_task(
    spec: FleetSpec,
    task: SwarmTask,
    suspend_after_events: Optional[int] = None,
    snapshot: Optional[Dict[str, Any]] = None,
    faults: Optional[FaultPlan] = None,
    attempt: int = 0,
):
    """Stacked-path twin of :func:`_run_swarm_task`: one-lane stack.

    Snapshots are the ordinary per-swarm format-2 payloads, so a swarm
    suspended by either path resumes bit-identically through the other.
    """
    from ..swarm.stacked import StackedSwarmKernel

    fire_task_faults(faults, task.index, attempt)
    stack = StackedSwarmKernel()
    stack.add_lane(
        task.params,
        seed=np.random.default_rng(task.seed),
        scenario=task.scenario,
        snapshot=snapshot,
    )
    if snapshot is not None:
        initial_states = [None]
    else:
        initial_states = [
            SystemState.one_club(task.params.num_pieces, spec.initial_club_size)
            if spec.initial_club_size
            else None
        ]
    result = stack.run_all(
        spec.horizon,
        initial_states=initial_states,
        sample_interval=spec.sample_interval,
        max_events=spec.max_events,
        max_population=spec.max_population,
        suspend_after_events=suspend_after_events,
    )[0]
    if result.suspended:
        return stack.lane(0).capture_state()
    return record_from_result(task, spec, result)


def _run_stacked_chunk(job, attempt: int = 0) -> List[FleetSwarmRecord]:
    """Top-level pool worker: run one chunk of swarms in one stacked kernel.

    Every lane's trajectory is bit-identical to the solo kernel on the same
    per-task seed, so the records (and hence the fleet fingerprint) are
    exactly those of :func:`_run_fleet_chunk` over the same tasks.
    """
    from ..swarm.stacked import StackedSwarmKernel

    spec, tasks, plan = job
    for task in tasks:
        # The stack runs all lanes together, so planned faults fire up
        # front — a crash/error takes the whole chunk, as it would when a
        # real worker process dies mid-stack.
        fire_task_faults(plan, task.index, attempt)
    stack = StackedSwarmKernel()
    for task in tasks:
        stack.add_lane(
            task.params,
            seed=np.random.default_rng(task.seed),
            scenario=task.scenario,
        )
    initial_states = [
        SystemState.one_club(task.params.num_pieces, spec.initial_club_size)
        if spec.initial_club_size
        else None
        for task in tasks
    ]
    results = stack.run_all(
        spec.horizon,
        initial_states=initial_states,
        sample_interval=spec.sample_interval,
        max_events=spec.max_events,
        max_population=spec.max_population,
    )
    return [
        record_from_result(task, spec, result)
        for task, result in zip(tasks, results)
    ]


def _check_stacked_task(task: SwarmTask) -> None:
    """Reject a task the stacked kernel cannot hold, naming the swarm."""
    if task.params.num_pieces > 64:
        raise ValueError(
            f"stacked fleet execution requires num_pieces <= 64 (the array "
            f"kernel's bitmask bound), but swarm {task.index} "
            f"({task.scenario_label!r}) has num_pieces="
            f"{task.params.num_pieces}; run with stacked=False"
        )


def _default_chunk_size(
    num_swarms: int, workers: Optional[int], stacked: bool = False
) -> int:
    """A few chunks per worker lane: big enough to amortize dispatch, small
    enough to keep the pool busy and the checkpoint cadence useful.

    The stacked kernel amortizes its per-round classification over every
    lane of a chunk, so stacked runs want *fewer, larger* chunks — one per
    worker lane — rather than the per-swarm path's finer shards.
    """
    lanes = max(1, workers or 1)
    if stacked:
        return max(1, min(256, math.ceil(num_swarms / lanes)))
    return max(1, min(64, math.ceil(num_swarms / (lanes * 4))))


class PersistentFleetExecution:
    """Shared execution plumbing of the fixed scheduler and the adaptive
    driver: worker/chunk validation, JSONL-log pairing (a checkpoint always
    gets a sibling ``<checkpoint>.jsonl`` log), batched log appends, and
    offset checkpoints.  Subclasses set ``self.spec`` (anything with a
    ``name``) before calling :meth:`_init_execution` and define
    :meth:`_swarm_target` (the swarm count the log header advertises)."""

    def _init_execution(
        self,
        workers: Optional[int],
        chunk_size: Optional[int],
        default_chunk_items: int,
        checkpoint_path: Optional[Union[str, Path]],
        checkpoint_every: int,
        log_path: Optional[Union[str, Path]],
        fsync_every_n: int = 1,
        stacked: bool = False,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if fsync_every_n < 1:
            raise ValueError(f"fsync_every_n must be >= 1, got {fsync_every_n}")
        if rotate_every is not None and rotate_every < 1:
            raise ValueError(f"rotate_every must be >= 1, got {rotate_every}")
        if compact_after is not None and compact_after < 1:
            raise ValueError(f"compact_after must be >= 1, got {compact_after}")
        if isinstance(max_retries, bool) or not isinstance(max_retries, int) or (
            max_retries < 0
        ):
            raise unsupported_option(
                "fleet execution", "max_retries", max_retries,
                "retries are a bounded non-negative count; pass 0 to "
                "disable supervised retry",
            )
        if task_timeout is not None and (
            isinstance(task_timeout, bool) or task_timeout <= 0
        ):
            raise unsupported_option(
                "fleet execution", "task_timeout", task_timeout,
                "the per-task deadline is seconds of wall clock and must "
                "be positive; pass None to disable it",
            )
        if retry_backoff < 0:
            raise unsupported_option(
                "fleet execution", "retry_backoff", retry_backoff,
                "the retry backoff is seconds and must be >= 0",
            )
        self.workers = workers
        self.fsync_every_n = fsync_every_n
        self.chunk_size = chunk_size or _default_chunk_size(
            default_chunk_items, workers, stacked
        )
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every
        self.max_retries = max_retries
        self.task_timeout = task_timeout
        self.retry_backoff = retry_backoff
        self.rotate_every = rotate_every
        self.compact_after = compact_after
        self.fault_plan = fault_plan
        self._fault_state = FaultState(fault_plan) if fault_plan is not None else None
        self._supervised = max_retries > 0 or task_timeout is not None
        if log_path is not None:
            self.log_path: Optional[Path] = Path(log_path)
        elif self.checkpoint_path is not None:
            self.log_path = default_log_path(self.checkpoint_path)
        else:
            self.log_path = None

    def _swarm_target(self) -> int:
        """The swarm count the log header advertises (budget for adaptive)."""
        raise NotImplementedError

    def _open_writer(
        self, seed: SeedLike, checkpoint: Optional[FleetCheckpoint] = None
    ) -> Optional[FleetLogWriter]:
        if self.log_path is None:
            return None
        header = FleetLogHeader(
            schema=FLEET_LOG_SCHEMA,
            spec_name=self.spec.name,
            num_swarms=self._swarm_target(),
            seed=seed,
        )
        if checkpoint is None:
            return FleetLogWriter(
                self.log_path,
                header,
                fsync_every_n=self.fsync_every_n,
                rotate_every=self.rotate_every,
                compact_after=self.compact_after,
                faults=self._fault_state,
            )
        return FleetLogWriter(
            self.log_path,
            header,
            resume_offset=checkpoint.log_offset,
            fsync_every_n=self.fsync_every_n,
            rotate_every=self.rotate_every,
            compact_after=self.compact_after,
            resume_segment=checkpoint.log_segment,
            resume_records=checkpoint.num_records,
            faults=self._fault_state,
        )

    @staticmethod
    def _append(
        writer: Optional[FleetLogWriter], records: List[FleetSwarmRecord]
    ) -> None:
        if writer is not None:
            writer.append(records)

    def _write_checkpoint(
        self,
        result: FleetResult,
        seed: SeedLike,
        writer: Optional[FleetLogWriter],
        in_flight: Optional[Tuple[int, Dict[str, Any]]],
        fresh: bool = False,
    ) -> None:
        if self.checkpoint_path is None:
            return
        assert writer is not None  # checkpoint_path implies a log
        # The checkpoint's offset must cover every appended record even when
        # fsyncs are batched, so force a sync first.
        writer.sync()
        save_checkpoint(
            self.checkpoint_path,
            FleetCheckpoint(
                spec=self.spec,
                seed=seed,
                num_records=len(result.records),
                log_name=writer.path.name,
                log_offset=writer.offset,
                log_segment=writer.segment,
                in_flight=in_flight,
            ),
            faults=self._fault_state,
            # The first checkpoint of a fresh run must also clear any stale
            # backup a *previous* run left, or a later corruption could fall
            # back to unrelated state.
            keep_previous=not fresh,
        )

    def _map_chunks(self, run_chunk, run_task, chunks):
        """Map chunk jobs over the workers, supervised when configured.

        Unsupervised (the default) this is a straight :func:`map_tasks`
        call — byte-for-byte the historical execution path.  Supervised,
        chunk failures are retried with backoff by the runner; a chunk
        whose retries are exhausted is *quarantined*: re-run in-process
        one task at a time, so one poison swarm costs only its own record
        (degraded to a ``failed`` record), never its chunk-mates.
        """
        from ..experiments.runner import TaskFailure, map_tasks

        if not self._supervised:
            yield from map_tasks(run_chunk, chunks, self.workers)
            return
        outcomes = map_tasks(
            run_chunk,
            chunks,
            self.workers,
            task_timeout=self.task_timeout,
            max_retries=self.max_retries,
            retry_backoff=self.retry_backoff,
            on_exhausted="yield",
            with_attempt=True,
        )
        for outcome in outcomes:
            if isinstance(outcome, TaskFailure):
                _spec, chunk_tasks, plan = chunks[outcome.task_index]
                yield self._quarantine_chunk(run_task, _spec, chunk_tasks, plan)
            else:
                yield outcome

    def _quarantine_chunk(self, run_task, spec, tasks, plan):
        """In-process fallback for a chunk that exhausted its retries.

        Each swarm gets its own fresh attempts; one that still cannot
        finish degrades to a schema-versioned ``failed`` record (with the
        final error and attempt count) instead of poisoning the run.
        """
        records: List[FleetSwarmRecord] = []
        for task in tasks:
            outcome = None
            last_error: Optional[BaseException] = None
            for attempt in range(self.max_retries + 1):
                try:
                    outcome = run_task(spec, task, faults=plan, attempt=attempt)
                    break
                except Exception as error:  # noqa: BLE001 — quarantine boundary
                    last_error = error
            if outcome is None:
                records.append(
                    failure_record(
                        task,
                        spec,
                        error=f"{type(last_error).__name__}: {last_error}",
                        attempts=self.max_retries + 1,
                    )
                )
            else:
                records.append(outcome)
        return records


class FleetScheduler(PersistentFleetExecution):
    """Execute a fleet spec across processes with checkpointable progress.

    Parameters
    ----------
    spec:
        The frozen fleet description.
    workers:
        ``None``/0/1 runs in-process; ``n > 1`` shards chunks over a
        ``multiprocessing`` pool.  The result is identical either way.
    chunk_size:
        Consecutive swarms per worker dispatch (default: a few chunks per
        worker lane).
    checkpoint_path:
        When set, progress is checkpointed here after every
        ``checkpoint_every`` completed chunks (and at every stop); the
        checkpoint stores only an offset into the JSONL log.
    log_path:
        Where the streaming JSONL fleet log lives.  Defaults to a sibling of
        ``checkpoint_path`` (``<checkpoint>.jsonl``) when checkpointing is
        on; may also be set alone to stream records without checkpoints.
    fsync_every_n:
        Fsync the log once per this many appended records instead of per
        append (default 1, the original per-chunk durability); checkpoints
        always force a sync first, so resume stays exact.
    stacked:
        Execute each chunk in one :class:`~repro.swarm.stacked.StackedSwarmKernel`
        instead of one solo kernel per swarm.  Every swarm's trajectory —
        and therefore every record, the fleet fingerprint, and any
        checkpoint snapshot — is bit-identical to the per-swarm path;
        only throughput changes.  Requires the ``"array"`` backend and
        ``num_pieces <= 64`` for every swarm.
    max_retries / task_timeout / retry_backoff:
        Worker supervision (see :func:`repro.experiments.runner.map_tasks`):
        any non-default value switches to the supervised pool, which
        detects dead workers, respawns them, retries failed chunks with
        deterministic backoff, and quarantines chunks that keep failing —
        one poison swarm degrades to a ``failed`` record instead of
        taking the run down.  Retried swarms reproduce their exact
        records (per-swarm seeds are independent ``SeedSequence.spawn``
        children), so fingerprints are unchanged.
    rotate_every / compact_after:
        Log segmentation (see :mod:`repro.fleet.persistence`): rotate the
        active log file into a numbered closed segment every that many
        records, and compact closed segments into one census snapshot
        once that many have accumulated.  Resume stays exact across both.
    fault_plan:
        A :class:`~repro.fleet.faults.FaultPlan` of injected failures for
        chaos testing; ``None`` (the default) costs nothing.
    """

    def __init__(
        self,
        spec: FleetSpec,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
        log_path: Optional[Union[str, Path]] = None,
        fsync_every_n: int = 1,
        stacked: bool = False,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if stacked and spec.backend != "array":
            raise unsupported_option(
                "stacked fleet execution", "backend", spec.backend,
                f"spec {spec.name!r} must use the 'array' backend; run with "
                f"stacked=False or switch the spec to the array backend",
            )
        self.spec = spec
        self.stacked = stacked
        self._init_execution(
            workers,
            chunk_size,
            spec.num_swarms,
            checkpoint_path,
            checkpoint_every,
            log_path,
            fsync_every_n,
            stacked,
            max_retries=max_retries,
            task_timeout=task_timeout,
            retry_backoff=retry_backoff,
            rotate_every=rotate_every,
            compact_after=compact_after,
            fault_plan=fault_plan,
        )

    def _swarm_target(self) -> int:
        return self.spec.num_swarms

    # -- entry points --------------------------------------------------------

    def run(
        self,
        seed: SeedLike = 0,
        stop_after_swarms: Optional[int] = None,
        suspend_after_events: Optional[int] = None,
    ) -> FleetResult:
        """Run the fleet from scratch.

        ``stop_after_swarms`` ends the run (with ``complete=False``) once
        that many swarms have been folded in — the deterministic equivalent
        of killing the run.  ``suspend_after_events`` additionally suspends
        the *next* swarm mid-flight after that many events and stores its
        kernel snapshot in the checkpoint, exercising the mid-swarm resume
        path; it requires ``stop_after_swarms`` and a ``checkpoint_path``.
        """
        if suspend_after_events is not None and stop_after_swarms is None:
            raise ValueError(
                "suspend_after_events requires stop_after_swarms (the swarm "
                "to suspend is the one right after the stop point)"
            )
        if stop_after_swarms is not None and self.checkpoint_path is None:
            raise ValueError(
                "stopping early without a checkpoint_path would lose the "
                "completed work; configure a checkpoint"
            )
        # Normalized once up front: the checkpoint then stores a pure,
        # picklable token, so resume re-derives the identical task list even
        # when the caller passed a (mutable) SeedSequence or Generator.
        seed = normalize_fleet_seed(seed)
        tasks = materialize_tasks(self.spec, seed)
        result = FleetResult(spec_name=self.spec.name, num_swarms=self.spec.num_swarms)
        writer = self._open_writer(seed)
        return self._execute(
            tasks,
            result,
            seed,
            writer,
            in_flight=None,
            stop_after_swarms=stop_after_swarms,
            suspend_after_events=suspend_after_events,
            fresh=True,
        )

    def resume(self, checkpoint_path: Optional[Union[str, Path]] = None) -> FleetResult:
        """Continue a checkpointed run to completion.

        The checkpoint's spec must equal this scheduler's spec; the master
        seed travels inside the checkpoint and the completed-swarm prefix is
        replayed from the paired JSONL log (truncated back to the
        checkpointed offset first).  A mid-swarm snapshot, when present, is
        restored into a fresh simulator and resumed first.
        """
        path = Path(checkpoint_path) if checkpoint_path else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint_path configured or given")
        checkpoint = load_checkpoint(path)
        if checkpoint.spec != self.spec:
            raise ValueError(
                "checkpoint spec does not match this scheduler's spec; "
                "use FleetScheduler.from_checkpoint"
            )
        self.checkpoint_path = path
        self.log_path = checkpoint.log_path(path)
        log = read_log(self.log_path, max_records=checkpoint.num_records)
        if len(log.records) < checkpoint.num_records:
            raise ValueError(
                f"fleet log {self.log_path} holds {len(log.records)} records "
                f"but the checkpoint expects {checkpoint.num_records}"
            )
        tasks = materialize_tasks(self.spec, checkpoint.seed)
        result = FleetResult.from_records(
            self.spec.name, self.spec.num_swarms, list(log.records)
        )
        writer = self._open_writer(checkpoint.seed, checkpoint=checkpoint)
        return self._execute(
            tasks,
            result,
            checkpoint.seed,
            writer,
            in_flight=checkpoint.in_flight,
            stop_after_swarms=None,
            suspend_after_events=None,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_path: Union[str, Path],
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_every: int = 1,
        fsync_every_n: int = 1,
        stacked: bool = False,
        max_retries: int = 0,
        task_timeout: Optional[float] = None,
        retry_backoff: float = 0.0,
        rotate_every: Optional[int] = None,
        compact_after: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> "FleetScheduler":
        """Build a scheduler around the spec stored in a checkpoint.

        ``stacked`` (like the supervision and log-layout knobs) is an
        execution property, not part of the spec: a fleet checkpointed by
        either path resumes (bit-identically) through the other.
        """
        checkpoint = load_checkpoint(checkpoint_path)
        return cls(
            checkpoint.spec,
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            fsync_every_n=fsync_every_n,
            stacked=stacked,
            max_retries=max_retries,
            task_timeout=task_timeout,
            retry_backoff=retry_backoff,
            rotate_every=rotate_every,
            compact_after=compact_after,
            fault_plan=fault_plan,
        )

    # -- core ---------------------------------------------------------------

    def _execute(
        self,
        tasks: Sequence[SwarmTask],
        result: FleetResult,
        seed: SeedLike,
        writer: Optional[FleetLogWriter],
        in_flight: Optional[Tuple[int, Dict[str, Any]]],
        stop_after_swarms: Optional[int],
        suspend_after_events: Optional[int],
        fresh: bool = False,
    ) -> FleetResult:
        spec = self.spec
        if self.stacked:
            for task in tasks:
                _check_stacked_task(task)
        run_task = _run_stacked_task if self.stacked else _run_swarm_task
        run_chunk = _run_stacked_chunk if self.stacked else _run_fleet_chunk
        try:
            if fresh:
                # An initial checkpoint pins the (spec, seed) pair on disk
                # before any work: a crash at any later point can resume.
                self._write_checkpoint(
                    result, seed, writer, in_flight=None, fresh=True
                )
            if in_flight is not None:
                index, snapshot = in_flight
                outcome = run_task(spec, tasks[index], snapshot=snapshot)
                result.add(outcome)
                self._append(writer, [outcome])
                self._write_checkpoint(result, seed, writer, in_flight=None)
            done = len(result.records)
            target = spec.num_swarms
            if stop_after_swarms is not None:
                target = min(target, max(stop_after_swarms, done))
            to_run = tasks[done:target]
            chunks = [
                (spec, to_run[start : start + self.chunk_size], self.fault_plan)
                for start in range(0, len(to_run), self.chunk_size)
            ]
            since_checkpoint = 0
            for records in self._map_chunks(run_chunk, run_task, chunks):
                for record in records:
                    result.add(record)
                self._append(writer, records)
                since_checkpoint += 1
                if since_checkpoint >= self.checkpoint_every:
                    self._write_checkpoint(result, seed, writer, in_flight=None)
                    since_checkpoint = 0
            if result.complete:
                self._write_checkpoint(result, seed, writer, in_flight=None)
                return result
            # Early stop: optionally suspend the next swarm mid-flight so the
            # checkpoint carries a kernel snapshot across the "kill".
            pending_in_flight = None
            if (
                suspend_after_events is not None
                and len(result.records) < spec.num_swarms
            ):
                task = tasks[len(result.records)]
                outcome = run_task(
                    spec, task, suspend_after_events=suspend_after_events
                )
                if isinstance(outcome, FleetSwarmRecord):
                    # The swarm ended before the suspension point; record it.
                    result.add(outcome)
                    self._append(writer, [outcome])
                else:
                    pending_in_flight = (task.index, outcome)
            self._write_checkpoint(result, seed, writer, in_flight=pending_in_flight)
            return result
        finally:
            if writer is not None:
                writer.close()


def run_fleet(
    spec: FleetSpec,
    seed: SeedLike = 0,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    log_path: Optional[Union[str, Path]] = None,
    stop_after_swarms: Optional[int] = None,
    suspend_after_events: Optional[int] = None,
    fsync_every_n: int = 1,
    stacked: bool = False,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
    retry_backoff: float = 0.0,
    rotate_every: Optional[int] = None,
    compact_after: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> FleetResult:
    """One-call fleet execution (see :class:`FleetScheduler`).

    ``backend=`` is accepted for signature uniformity with ``run_swarm`` /
    ``run_scenario`` but the execution backend is declared on the spec, so
    any non-``None`` value is rejected.
    """
    if backend is not None:
        raise unsupported_option(
            "run_fleet", "backend", backend,
            "the execution backend is declared on the fleet spec; construct "
            "FleetSpec(backend=...) instead",
        )
    scheduler = FleetScheduler(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        log_path=log_path,
        fsync_every_n=fsync_every_n,
        stacked=stacked,
        max_retries=max_retries,
        task_timeout=task_timeout,
        retry_backoff=retry_backoff,
        rotate_every=rotate_every,
        compact_after=compact_after,
        fault_plan=fault_plan,
    )
    return scheduler.run(
        seed=seed,
        stop_after_swarms=stop_after_swarms,
        suspend_after_events=suspend_after_events,
    )


def resume_fleet(
    checkpoint_path: Union[str, Path],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_every: int = 1,
    fsync_every_n: int = 1,
    stacked: bool = False,
    max_retries: int = 0,
    task_timeout: Optional[float] = None,
    retry_backoff: float = 0.0,
    rotate_every: Optional[int] = None,
    compact_after: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> FleetResult:
    """Resume a checkpointed fleet to completion (see :class:`FleetScheduler`)."""
    scheduler = FleetScheduler.from_checkpoint(
        checkpoint_path,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_every=checkpoint_every,
        fsync_every_n=fsync_every_n,
        stacked=stacked,
        max_retries=max_retries,
        task_timeout=task_timeout,
        retry_backoff=retry_backoff,
        rotate_every=rotate_every,
        compact_after=compact_after,
        fault_plan=fault_plan,
    )
    return scheduler.resume()


__all__ = [
    "FleetScheduler",
    "PersistentFleetExecution",
    "resume_fleet",
    "run_fleet",
]
