"""Fleet scheduler: shard swarms over workers, checkpoint, resume.

:class:`FleetScheduler` executes a :class:`~repro.fleet.spec.FleetSpec`:

* **sharding** — the materialized swarm tasks are grouped into chunks of
  ``chunk_size`` consecutive swarms and mapped over
  :func:`repro.experiments.runner.map_tasks` (the same process-pool
  primitive :class:`~repro.experiments.runner.BatchRunner` uses), so many
  short swarms amortize one worker dispatch;
* **streaming aggregation** — each finished chunk's
  :class:`~repro.fleet.result.FleetSwarmRecord`\\ s are folded into the
  incremental :class:`~repro.fleet.result.FleetResult` strictly in swarm
  order, so the outcome is a pure function of ``(spec, seed)`` regardless of
  worker count or chunking;
* **checkpoint / resume** — with a ``checkpoint_path``, progress is saved
  after every ``checkpoint_every`` chunks (atomically; see
  :mod:`repro.fleet.checkpoint`).  :meth:`FleetScheduler.resume` /
  :func:`resume_fleet` reload a checkpoint and continue to the *exact*
  ``FleetResult`` of an uninterrupted run.  A run can even stop in the
  middle of a swarm: the in-flight simulator is suspended through the
  kernels' ``suspend_after_events`` / ``capture_state`` API and its snapshot
  rides along in the checkpoint, to be restored and resumed bit-identically.

``run(stop_after_swarms=..., suspend_after_events=...)`` exposes the
interruption points deterministically, which is how the tests (and the CI
smoke step) "kill" a fleet mid-run without process signals.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.state import SystemState
from ..simulation.rng import SeedLike
from ..swarm.swarm import make_simulator
from .checkpoint import FleetCheckpoint, load_checkpoint, save_checkpoint
from .result import FleetResult, FleetSwarmRecord, record_from_result
from .spec import FleetSpec, SwarmTask, materialize_tasks, normalize_fleet_seed


def _build_simulator(spec: FleetSpec, task: SwarmTask):
    return make_simulator(
        task.params,
        seed=np.random.default_rng(task.seed),
        backend=spec.backend,
        scenario=task.scenario,
    )


def _run_swarm_task(
    spec: FleetSpec,
    task: SwarmTask,
    suspend_after_events: Optional[int] = None,
    snapshot: Optional[Dict[str, Any]] = None,
):
    """Run (or resume) one swarm; returns a record, or a kernel snapshot
    when the run suspended at ``suspend_after_events``."""
    simulator = _build_simulator(spec, task)
    run_kwargs = dict(
        sample_interval=spec.sample_interval,
        max_events=spec.max_events,
        max_population=spec.max_population,
    )
    if snapshot is not None:
        simulator.restore_state(snapshot)
        result = simulator.run(spec.horizon, resume=True, **run_kwargs)
    else:
        initial = (
            SystemState.one_club(task.params.num_pieces, spec.initial_club_size)
            if spec.initial_club_size
            else None
        )
        result = simulator.run(
            spec.horizon,
            initial_state=initial,
            suspend_after_events=suspend_after_events,
            **run_kwargs,
        )
    if result.suspended:
        return simulator.capture_state()
    return record_from_result(task, spec, result)


def _run_fleet_chunk(job) -> List[FleetSwarmRecord]:
    """Top-level pool worker: run one chunk of consecutive swarms."""
    spec, tasks = job
    return [_run_swarm_task(spec, task) for task in tasks]


def _default_chunk_size(num_swarms: int, workers: Optional[int]) -> int:
    """A few chunks per worker lane: big enough to amortize dispatch, small
    enough to keep the pool busy and the checkpoint cadence useful."""
    lanes = max(1, workers or 1)
    return max(1, min(64, math.ceil(num_swarms / (lanes * 4))))


class FleetScheduler:
    """Execute a fleet spec across processes with checkpointable progress.

    Parameters
    ----------
    spec:
        The frozen fleet description.
    workers:
        ``None``/0/1 runs in-process; ``n > 1`` shards chunks over a
        ``multiprocessing`` pool.  The result is identical either way.
    chunk_size:
        Consecutive swarms per worker dispatch (default: a few chunks per
        worker lane).
    checkpoint_path:
        When set, progress is checkpointed here after every
        ``checkpoint_every`` completed chunks (and at every stop).
    """

    def __init__(
        self,
        spec: FleetSpec,
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_every: int = 1,
    ):
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size or _default_chunk_size(spec.num_swarms, workers)
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_every = checkpoint_every

    # -- entry points --------------------------------------------------------

    def run(
        self,
        seed: SeedLike = 0,
        stop_after_swarms: Optional[int] = None,
        suspend_after_events: Optional[int] = None,
    ) -> FleetResult:
        """Run the fleet from scratch.

        ``stop_after_swarms`` ends the run (with ``complete=False``) once
        that many swarms have been folded in — the deterministic equivalent
        of killing the run.  ``suspend_after_events`` additionally suspends
        the *next* swarm mid-flight after that many events and stores its
        kernel snapshot in the checkpoint, exercising the mid-swarm resume
        path; it requires ``stop_after_swarms`` and a ``checkpoint_path``.
        """
        if suspend_after_events is not None and stop_after_swarms is None:
            raise ValueError(
                "suspend_after_events requires stop_after_swarms (the swarm "
                "to suspend is the one right after the stop point)"
            )
        if stop_after_swarms is not None and self.checkpoint_path is None:
            raise ValueError(
                "stopping early without a checkpoint_path would lose the "
                "completed work; configure a checkpoint"
            )
        # Normalized once up front: the checkpoint then stores a pure,
        # picklable token, so resume re-derives the identical task list even
        # when the caller passed a (mutable) SeedSequence or Generator.
        seed = normalize_fleet_seed(seed)
        tasks = materialize_tasks(self.spec, seed)
        result = FleetResult(spec_name=self.spec.name, num_swarms=self.spec.num_swarms)
        return self._execute(
            tasks,
            result,
            seed,
            in_flight=None,
            stop_after_swarms=stop_after_swarms,
            suspend_after_events=suspend_after_events,
        )

    def resume(self, checkpoint_path: Optional[Union[str, Path]] = None) -> FleetResult:
        """Continue a checkpointed run to completion.

        The checkpoint's spec must equal this scheduler's spec; the master
        seed travels inside the checkpoint.  A mid-swarm snapshot, when
        present, is restored into a fresh simulator and resumed first.
        """
        path = Path(checkpoint_path) if checkpoint_path else self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint_path configured or given")
        checkpoint = load_checkpoint(path)
        if checkpoint.spec != self.spec:
            raise ValueError(
                "checkpoint spec does not match this scheduler's spec; "
                "use FleetScheduler.from_checkpoint"
            )
        tasks = materialize_tasks(self.spec, checkpoint.seed)
        result = FleetResult.from_records(
            self.spec.name, self.spec.num_swarms, list(checkpoint.records)
        )
        return self._execute(
            tasks,
            result,
            checkpoint.seed,
            in_flight=checkpoint.in_flight,
            stop_after_swarms=None,
            suspend_after_events=None,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_path: Union[str, Path],
        workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        checkpoint_every: int = 1,
    ) -> "FleetScheduler":
        """Build a scheduler around the spec stored in a checkpoint."""
        checkpoint = load_checkpoint(checkpoint_path)
        return cls(
            checkpoint.spec,
            workers=workers,
            chunk_size=chunk_size,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
        )

    # -- core ---------------------------------------------------------------

    def _execute(
        self,
        tasks: Sequence[SwarmTask],
        result: FleetResult,
        seed: SeedLike,
        in_flight: Optional[Tuple[int, Dict[str, Any]]],
        stop_after_swarms: Optional[int],
        suspend_after_events: Optional[int],
    ) -> FleetResult:
        # Deferred: repro.experiments.fleet (the phase-diagram experiment)
        # sits on top of this module, so a module-level import of the
        # experiments package here would be circular.
        from ..experiments.runner import map_tasks

        spec = self.spec
        if in_flight is not None:
            index, snapshot = in_flight
            outcome = _run_swarm_task(spec, tasks[index], snapshot=snapshot)
            result.add(outcome)
            self._write_checkpoint(result, seed, in_flight=None)
        done = len(result.records)
        target = spec.num_swarms
        if stop_after_swarms is not None:
            target = min(target, max(stop_after_swarms, done))
        to_run = tasks[done:target]
        chunks = [
            (spec, to_run[start : start + self.chunk_size])
            for start in range(0, len(to_run), self.chunk_size)
        ]
        since_checkpoint = 0
        for records in map_tasks(_run_fleet_chunk, chunks, self.workers):
            for record in records:
                result.add(record)
            since_checkpoint += 1
            if since_checkpoint >= self.checkpoint_every:
                self._write_checkpoint(result, seed, in_flight=None)
                since_checkpoint = 0
        if result.complete:
            self._write_checkpoint(result, seed, in_flight=None)
            return result
        # Early stop: optionally suspend the next swarm mid-flight so the
        # checkpoint carries a kernel snapshot across the "kill".
        pending_in_flight = None
        if suspend_after_events is not None and len(result.records) < spec.num_swarms:
            task = tasks[len(result.records)]
            outcome = _run_swarm_task(
                spec, task, suspend_after_events=suspend_after_events
            )
            if isinstance(outcome, FleetSwarmRecord):
                # The swarm ended before the suspension point; record it.
                result.add(outcome)
            else:
                pending_in_flight = (task.index, outcome)
        self._write_checkpoint(result, seed, in_flight=pending_in_flight)
        return result

    def _write_checkpoint(
        self,
        result: FleetResult,
        seed: SeedLike,
        in_flight: Optional[Tuple[int, Dict[str, Any]]],
    ) -> None:
        if self.checkpoint_path is None:
            return
        save_checkpoint(
            self.checkpoint_path,
            FleetCheckpoint(
                spec=self.spec,
                seed=seed,
                records=list(result.records),
                next_index=len(result.records),
                in_flight=in_flight,
            ),
        )


def run_fleet(
    spec: FleetSpec,
    seed: SeedLike = 0,
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_path: Optional[Union[str, Path]] = None,
    checkpoint_every: int = 1,
    stop_after_swarms: Optional[int] = None,
    suspend_after_events: Optional[int] = None,
) -> FleetResult:
    """One-call fleet execution (see :class:`FleetScheduler`)."""
    scheduler = FleetScheduler(
        spec,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
    )
    return scheduler.run(
        seed=seed,
        stop_after_swarms=stop_after_swarms,
        suspend_after_events=suspend_after_events,
    )


def resume_fleet(
    checkpoint_path: Union[str, Path],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint_every: int = 1,
) -> FleetResult:
    """Resume a checkpointed fleet to completion (see :class:`FleetScheduler`)."""
    scheduler = FleetScheduler.from_checkpoint(
        checkpoint_path,
        workers=workers,
        chunk_size=chunk_size,
        checkpoint_every=checkpoint_every,
    )
    return scheduler.resume()


__all__ = ["FleetScheduler", "resume_fleet", "run_fleet"]
