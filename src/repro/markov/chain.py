"""Finite CTMC utilities: stationary laws, hitting times, uniformization.

Generic helpers over an explicit (dense or sparse) generator matrix, used by
the exact truncated-chain analysis and by the µ = ∞ watched-chain experiments.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

StateT = TypeVar("StateT", bound=Hashable)


def build_generator(
    states: Sequence[StateT],
    transition_function: Callable[[StateT], Sequence[Tuple[float, StateT]]],
    absorb_unknown: bool = True,
) -> sp.csr_matrix:
    """Assemble the generator matrix restricted to ``states``.

    Transitions to states outside the list are dropped when
    ``absorb_unknown`` is True (finite-buffer truncation), otherwise a
    ``KeyError`` is raised.
    """
    index = {state: i for i, state in enumerate(states)}
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for i, state in enumerate(states):
        exit_rate = 0.0
        for rate, target in transition_function(state):
            if rate <= 0:
                continue
            j = index.get(target)
            if j is None:
                if absorb_unknown:
                    continue
                raise KeyError(f"transition target {target!r} outside the state list")
            rows.append(i)
            cols.append(j)
            data.append(rate)
            exit_rate += rate
        rows.append(i)
        cols.append(i)
        data.append(-exit_rate)
    size = len(states)
    return sp.csr_matrix((data, (rows, cols)), shape=(size, size))


def stationary_distribution(generator: sp.spmatrix) -> np.ndarray:
    """Stationary distribution ``π`` solving ``π Q = 0``, ``Σ π = 1``."""
    dense = np.asarray(generator.todense(), dtype=float)
    size = dense.shape[0]
    system = np.vstack([dense.T, np.ones((1, size))])
    rhs = np.zeros(size + 1)
    rhs[-1] = 1.0
    solution, *_ = np.linalg.lstsq(system, rhs, rcond=None)
    solution = np.clip(solution, 0.0, None)
    total = solution.sum()
    if total <= 0:
        raise RuntimeError("failed to compute a stationary distribution")
    return solution / total


def expected_hitting_times(
    generator: sp.spmatrix, target_indices: Sequence[int]
) -> np.ndarray:
    """Expected time to reach the target set from every state.

    Solves ``Q_B h = −1`` on the complement ``B`` of the target set; entries
    for target states are zero.
    """
    size = generator.shape[0]
    targets = set(int(i) for i in target_indices)
    others = [i for i in range(size) if i not in targets]
    times = np.zeros(size)
    if not others:
        return times
    submatrix = sp.csc_matrix(generator.tocsr()[others, :][:, others])
    rhs = -np.ones(len(others))
    solution = spla.spsolve(submatrix, rhs)
    for row, state_index in enumerate(others):
        times[state_index] = solution[row]
    return times


def uniformized_transition_matrix(
    generator: sp.spmatrix, uniformization_rate: Optional[float] = None
) -> Tuple[sp.csr_matrix, float]:
    """Uniformization: ``P = I + Q/Λ`` with ``Λ ≥ max_i |q_ii|``.

    Returns the discrete-time kernel and the rate ``Λ`` used.
    """
    csr = generator.tocsr()
    diagonal = -csr.diagonal()
    max_rate = float(diagonal.max()) if diagonal.size else 0.0
    rate = uniformization_rate if uniformization_rate is not None else max_rate * 1.0001
    if rate <= 0:
        rate = 1.0
    if rate < max_rate:
        raise ValueError("uniformization_rate must dominate the exit rates")
    size = csr.shape[0]
    kernel = sp.identity(size, format="csr") + csr / rate
    return kernel.tocsr(), rate


def transient_distribution(
    generator: sp.spmatrix,
    initial: np.ndarray,
    time: float,
    tolerance: float = 1e-10,
    max_terms: int = 10_000,
) -> np.ndarray:
    """Distribution at time ``time`` via uniformization (Poisson-weighted powers)."""
    if time < 0:
        raise ValueError("time must be nonnegative")
    kernel, rate = uniformized_transition_matrix(generator)
    weight_total = np.exp(-rate * time)
    weight = weight_total
    distribution = np.asarray(initial, dtype=float)
    accumulated = weight * distribution
    term = distribution
    k = 0
    while weight_total < 1.0 - tolerance and k < max_terms:
        k += 1
        term = term @ kernel
        weight *= rate * time / k
        weight_total += weight
        accumulated = accumulated + weight * term
    return np.asarray(accumulated).ravel()


__all__ = [
    "build_generator",
    "stationary_distribution",
    "expected_hitting_times",
    "uniformized_transition_matrix",
    "transient_distribution",
]
