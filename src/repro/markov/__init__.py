"""Generic Markov-chain tooling.

* :mod:`repro.markov.chain` — generators, stationary laws, hitting times,
  uniformization on finite state sets;
* :mod:`repro.markov.foster` — Foster--Lyapunov criterion and drift bounds
  (appendix Propositions 18 and Lemma 19);
* :mod:`repro.markov.classify` — empirical stable/unstable classification of
  simulated trajectories.
"""

from .chain import (
    build_generator,
    expected_hitting_times,
    stationary_distribution,
    transient_distribution,
    uniformized_transition_matrix,
)
from .classify import (
    TrajectoryClassification,
    TrajectoryVerdict,
    classify_trajectory,
    majority_verdict,
)
from .foster import (
    FosterCheckResult,
    check_foster_lyapunov,
    drift,
    lipschitz_drift_bound,
)

__all__ = [
    "FosterCheckResult",
    "TrajectoryClassification",
    "TrajectoryVerdict",
    "build_generator",
    "check_foster_lyapunov",
    "classify_trajectory",
    "drift",
    "expected_hitting_times",
    "lipschitz_drift_bound",
    "majority_verdict",
    "stationary_distribution",
    "transient_distribution",
    "uniformized_transition_matrix",
]
