"""Classify simulated trajectories as stable or unstable.

Theorem 1 is a statement about transience vs. positive recurrence, which a
finite simulation can only indicate.  The classifier here combines two
signals computed on the trailing portion of a run:

* the *normalised growth slope* of the population, ``slope / λ_total`` — in
  the transient regime the population grows linearly at a rate of order the
  arrival-rate surplus, in the stable regime the slope hovers around zero;
* the *return behaviour* — a stable run keeps returning to small populations,
  so the minimum population over the trailing window stays close to its
  typical level instead of ratcheting upwards.

The thresholds are deliberately conservative; experiments place their
parameter points well inside each region so the verdicts are unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence

import numpy as np


class TrajectoryVerdict(Enum):
    """Empirical verdict for one simulated trajectory."""

    STABLE = "stable"
    UNSTABLE = "unstable"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class TrajectoryClassification:
    """Verdict plus the statistics it was based on."""

    verdict: TrajectoryVerdict
    normalized_slope: float
    trailing_mean: float
    trailing_minimum: float
    peak: float


def classify_trajectory(
    times: Sequence[float],
    population: Sequence[float],
    arrival_rate: float,
    last_fraction: float = 0.5,
    growth_threshold: float = 0.15,
    stable_threshold: float = 0.05,
) -> TrajectoryClassification:
    """Classify a population trajectory.

    Parameters
    ----------
    times, population:
        Sampled trajectory of the population size.
    arrival_rate:
        Total arrival rate ``λ_total``, used to normalise the growth slope.
    last_fraction:
        Portion of the run (from the end) used for the statistics.
    growth_threshold:
        Normalised slope above which the run is declared unstable.
    stable_threshold:
        Normalised slope below which the run is declared stable (provided the
        trailing minimum shows the process keeps returning to low levels).
    """
    t = np.asarray(times, dtype=float)
    n = np.asarray(population, dtype=float)
    if t.size != n.size:
        raise ValueError("times and population must have equal length")
    if t.size < 4:
        return TrajectoryClassification(
            verdict=TrajectoryVerdict.INCONCLUSIVE,
            normalized_slope=0.0,
            trailing_mean=float(n.mean()) if n.size else 0.0,
            trailing_minimum=float(n.min()) if n.size else 0.0,
            peak=float(n.max()) if n.size else 0.0,
        )
    if arrival_rate <= 0:
        raise ValueError("arrival_rate must be positive")
    start = int(round((1.0 - last_fraction) * t.size))
    t_tail = t[start:]
    n_tail = n[start:]
    if np.ptp(t_tail) == 0:
        slope = 0.0
    else:
        # Closed-form simple-regression slope, cov(t, n) / var(t).  This is
        # the same least-squares line ``np.polyfit(t_tail, n_tail, 1)``
        # solves for, without the rank-checked SVD machinery — the fleet
        # aggregator classifies every finished swarm, and polyfit's lstsq
        # setup dominated that path.
        t_centered = t_tail - t_tail.mean()
        slope = float(np.dot(t_centered, n_tail) / np.dot(t_centered, t_centered))
    normalized = float(slope) / arrival_rate
    trailing_mean = float(n_tail.mean())
    trailing_min = float(n_tail.min())
    peak = float(n.max())

    # Fraction of all peers that ever arrived (≈ λ · duration) that are still
    # present over the tail of the run.  Transient growth retains a sizable
    # fraction; a positive-recurrent system retains a vanishing one even when
    # it is still equilibrating and the local slope is noisy.
    duration = float(t[-1] - t[0])
    cumulative_arrivals = max(arrival_rate * duration, 1e-12)
    occupancy_ratio = trailing_mean / cumulative_arrivals

    if normalized > growth_threshold and occupancy_ratio > 0.12:
        verdict = TrajectoryVerdict.UNSTABLE
    elif occupancy_ratio < 0.08:
        verdict = TrajectoryVerdict.STABLE
    elif normalized < stable_threshold and trailing_min <= max(2.0 * arrival_rate, 0.5 * trailing_mean + 5.0):
        verdict = TrajectoryVerdict.STABLE
    elif normalized < stable_threshold:
        # Slope is flat but the floor has ratcheted up: call it stable only if
        # the population is not still far above its earlier levels.
        verdict = (
            TrajectoryVerdict.STABLE
            if trailing_mean <= 0.75 * peak
            else TrajectoryVerdict.INCONCLUSIVE
        )
    else:
        verdict = TrajectoryVerdict.INCONCLUSIVE
    return TrajectoryClassification(
        verdict=verdict,
        normalized_slope=normalized,
        trailing_mean=trailing_mean,
        trailing_minimum=trailing_min,
        peak=peak,
    )


def majority_verdict(
    classifications: Sequence[TrajectoryClassification],
) -> TrajectoryVerdict:
    """Majority vote across replications (ties resolve to INCONCLUSIVE)."""
    if not classifications:
        return TrajectoryVerdict.INCONCLUSIVE
    stable = sum(1 for c in classifications if c.verdict is TrajectoryVerdict.STABLE)
    unstable = sum(
        1 for c in classifications if c.verdict is TrajectoryVerdict.UNSTABLE
    )
    if stable > unstable and stable >= len(classifications) / 2:
        return TrajectoryVerdict.STABLE
    if unstable > stable and unstable >= len(classifications) / 2:
        return TrajectoryVerdict.UNSTABLE
    return TrajectoryVerdict.INCONCLUSIVE


__all__ = [
    "TrajectoryVerdict",
    "TrajectoryClassification",
    "classify_trajectory",
    "majority_verdict",
]
