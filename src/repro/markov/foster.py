"""Foster--Lyapunov machinery (Propositions 18, Lemma 19 of the appendix).

These are generic tools for continuous-time Markov chains given by a
transition-enumeration function:

* :func:`drift` — the generator applied to a function,
  ``QV(x) = Σ_{x'} q(x,x')(V(x') − V(x))``;
* :func:`check_foster_lyapunov` — verify the combined criterion
  ``QV ≤ −f + g`` on a supplied set of states and report the implied moment
  bound ``Σ f π ≤ Σ g π`` structure (Proposition 18);
* :func:`lipschitz_drift_bound` — the bound of Lemma 19 on the drift of a
  smooth function of a function of the state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, List, Sequence, Tuple, TypeVar

StateT = TypeVar("StateT", bound=Hashable)
TransitionFn = Callable[[StateT], Sequence[Tuple[float, StateT]]]


def drift(
    transition_function: TransitionFn,
    function: Callable[[StateT], float],
    state: StateT,
) -> float:
    """Generator drift ``QV(x)`` of ``function`` at ``state``."""
    here = function(state)
    return sum(
        rate * (function(target) - here)
        for rate, target in transition_function(state)
        if rate > 0
    )


@dataclass(frozen=True)
class FosterCheckResult:
    """Outcome of checking ``QV(x) ≤ −f(x) + g(x)`` over a set of states."""

    num_states: int
    num_satisfied: int
    worst_violation: float
    worst_margin: float

    @property
    def all_satisfied(self) -> bool:
        return self.num_satisfied == self.num_states


def check_foster_lyapunov(
    transition_function: TransitionFn,
    lyapunov: Callable[[StateT], float],
    f: Callable[[StateT], float],
    g: Callable[[StateT], float],
    states: Iterable[StateT],
    tolerance: float = 1e-9,
) -> FosterCheckResult:
    """Check the combined Foster--Lyapunov criterion on the given states.

    For each state the inequality ``QV(x) ≤ −f(x) + g(x) + tolerance`` is
    tested.  Proposition 18 then gives positive recurrence (and the moment
    bound ``Σ_x f(x) π(x) ≤ Σ_x g(x) π(x)``) provided the exceptional set
    ``{f < g + δ}`` is finite — a structural property callers must argue
    separately; this function only reports the pointwise inequality.
    """
    num_states = 0
    num_satisfied = 0
    worst_violation = 0.0
    worst_margin = float("inf")
    for state in states:
        value = drift(transition_function, lyapunov, state)
        bound = -f(state) + g(state)
        margin = bound - value
        num_states += 1
        if value <= bound + tolerance:
            num_satisfied += 1
        else:
            worst_violation = max(worst_violation, value - bound)
        worst_margin = min(worst_margin, margin)
    return FosterCheckResult(
        num_states=num_states,
        num_satisfied=num_satisfied,
        worst_violation=worst_violation,
        worst_margin=worst_margin if num_states else 0.0,
    )


def lipschitz_drift_bound(
    transition_function: TransitionFn,
    inner: Callable[[StateT], float],
    outer_derivative: Callable[[float], float],
    lipschitz_constant: float,
    state: StateT,
) -> float:
    """Upper bound on ``QV(f)(x)`` from Lemma 19.

    For ``V`` differentiable with an ``M``-Lipschitz derivative,

    ``QV(f)(x) ≤ V'(f(x)) Qf(x) + (M/2) Σ q(x,x') (f(x') − f(x))²``.
    """
    here = inner(state)
    drift_inner = 0.0
    quadratic = 0.0
    for rate, target in transition_function(state):
        if rate <= 0:
            continue
        difference = inner(target) - here
        drift_inner += rate * difference
        quadratic += rate * difference * difference
    return outer_derivative(here) * drift_inner + 0.5 * lipschitz_constant * quadratic


__all__ = [
    "FosterCheckResult",
    "check_foster_lyapunov",
    "drift",
    "lipschitz_drift_bound",
]
