"""repro — reproduction of "Stability of a Peer-to-Peer Communication System".

The package implements the Zhu--Hajek model of an unstructured P2P swarm, the
stability theory of Theorem 1 and its extensions (piece-selection policies,
network coding, the µ = ∞ borderline), a peer-level discrete-event simulator,
the proof substrates (branching processes, Lyapunov functions, queueing
bounds), and an experiment harness reproducing every figure and worked example
of the paper.

Quick start::

    from repro import SystemParameters, analyze, run_swarm

    params = SystemParameters.flash_crowd(
        num_pieces=4, arrival_rate=1.5, seed_rate=2.0,
    )
    print(analyze(params).describe())        # Theorem 1 verdict
    result = run_swarm(params, horizon=200.0, seed=0)
    print(result.metrics.summary())          # simulated behaviour

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured comparisons.
"""

from .core import (
    PieceSet,
    Stability,
    StabilityReport,
    SystemParameters,
    SystemState,
    analyze,
    critical_departure_rate,
    critical_seed_rate,
    delta_s,
    is_stable,
    is_unstable,
    minimum_mean_dwell_time,
    piece_threshold,
    stability_margin,
    uniform_single_piece_rates,
)
from .fleet import (
    AdaptiveFleetDriver,
    AdaptiveFleetSpec,
    FleetResult,
    FleetScheduler,
    FleetSpec,
    resume_adaptive_fleet,
    resume_fleet,
    run_adaptive_fleet,
    run_fleet,
)
from .swarm import (
    RandomUsefulSelection,
    RarestFirstSelection,
    SequentialSelection,
    SwarmResult,
    SwarmSimulator,
    make_policy,
    run_swarm,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveFleetDriver",
    "AdaptiveFleetSpec",
    "FleetResult",
    "FleetScheduler",
    "FleetSpec",
    "PieceSet",
    "RandomUsefulSelection",
    "RarestFirstSelection",
    "SequentialSelection",
    "Stability",
    "StabilityReport",
    "SwarmResult",
    "SwarmSimulator",
    "SystemParameters",
    "SystemState",
    "__version__",
    "analyze",
    "critical_departure_rate",
    "critical_seed_rate",
    "delta_s",
    "is_stable",
    "is_unstable",
    "make_policy",
    "minimum_mean_dwell_time",
    "piece_threshold",
    "resume_adaptive_fleet",
    "resume_fleet",
    "run_adaptive_fleet",
    "run_fleet",
    "run_swarm",
    "stability_margin",
    "uniform_single_piece_rates",
]
