"""Discrete-event and Markov-chain simulation substrates.

* :mod:`repro.simulation.engine` — event loop and Poisson clocks;
* :mod:`repro.simulation.ctmc` — generic and model-specific jump-chain
  simulators;
* :mod:`repro.simulation.processes` — Poisson / compound-Poisson utilities;
* :mod:`repro.simulation.rng` — reproducible random streams.
"""

from .ctmc import CtmcTrajectory, GenericCtmcSimulator, MarkovChainSimulator
from .engine import EventLoop, PoissonClock
from .processes import (
    CompoundPoissonProcess,
    MarkedPoissonProcess,
    kingman_exceedance_bound,
    thin_poisson_times,
)
from .rng import make_rng, spawn_generators

__all__ = [
    "CompoundPoissonProcess",
    "CtmcTrajectory",
    "EventLoop",
    "GenericCtmcSimulator",
    "MarkedPoissonProcess",
    "MarkovChainSimulator",
    "PoissonClock",
    "kingman_exceedance_bound",
    "make_rng",
    "spawn_generators",
    "thin_poisson_times",
]
