"""A small discrete-event simulation engine.

The peer-level swarm simulator and the queueing substrates are built on a
conventional event-heap engine: events are ``(time, sequence, callback)``
entries popped in time order; callbacks may schedule further events.  The
engine knows nothing about peers or pieces — it only advances the clock.

A companion :class:`PoissonClock` models the internal Poisson clocks of the
paper (the fixed seed's rate-``U_s`` clock and every peer's rate-``µ`` clock):
each tick re-schedules the next tick, and clocks can be cancelled when their
owner departs.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from .rng import exponential


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventCancelled:
    """Handle returned by :meth:`EventLoop.schedule`; used to cancel events."""

    __slots__ = ("_event",)

    def __init__(self, event: _ScheduledEvent):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def is_cancelled(self) -> bool:
        return self._event.cancelled


class EventLoop:
    """Time-ordered event queue with cancellation support."""

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._heap: list[_ScheduledEvent] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventCancelled:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be nonnegative, got {delay}")
        if math.isinf(delay):
            # Never fires; return an already-cancelled handle.
            event = _ScheduledEvent(math.inf, next(self._counter), callback, True)
            return EventCancelled(event)
        event = _ScheduledEvent(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return EventCancelled(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventCancelled:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        return self.schedule(time - self._now, callback)

    def peek_time(self) -> float:
        """Time of the next pending (non-cancelled) event, or ``inf``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else math.inf

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events until the clock would pass ``end_time``.

        Returns the number of events executed.  The clock is advanced to
        ``end_time`` at the end even if no event lands exactly there.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                break
            next_time = self.peek_time()
            if next_time > end_time:
                break
            if not self.step():
                break
            executed += 1
        self._now = max(self._now, end_time)
        return executed


class PoissonClock:
    """An internal Poisson clock that invokes a callback at each tick.

    Models the paper's contact clocks: the owner contacts a random peer at the
    ticks of a rate-``rate`` Poisson process.  The clock keeps re-arming itself
    until :meth:`stop` is called (e.g. when the owning peer departs).  The rate
    can be changed on the fly (used by the faster-retry extension of Section
    VIII-C).
    """

    def __init__(
        self,
        loop: EventLoop,
        rng: np.random.Generator,
        rate: float,
        on_tick: Callable[[], None],
    ):
        if rate < 0:
            raise ValueError(f"rate must be nonnegative, got {rate}")
        self._loop = loop
        self._rng = rng
        self._rate = rate
        self._on_tick = on_tick
        self._running = False
        self._pending: Optional[EventCancelled] = None

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def is_running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Arm the clock (idempotent)."""
        if self._running:
            return
        self._running = True
        self._arm()

    def stop(self) -> None:
        """Disarm the clock; no further ticks fire."""
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def set_rate(self, rate: float) -> None:
        """Change the tick rate; the next tick is re-drawn at the new rate."""
        if rate < 0:
            raise ValueError(f"rate must be nonnegative, got {rate}")
        self._rate = rate
        if self._running:
            if self._pending is not None:
                self._pending.cancel()
            self._arm()

    def _arm(self) -> None:
        delay = exponential(self._rng, self._rate)
        if math.isinf(delay):
            self._pending = None
            return
        self._pending = self._loop.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        self._on_tick()
        if self._running:
            self._arm()


__all__ = ["EventLoop", "EventCancelled", "PoissonClock"]
