"""Generic continuous-time Markov chain simulation (Gillespie / jump chain).

The exact model of the paper is a CTMC on population-count states.  For
moderate populations it is far more efficient to simulate the jump chain
directly from the aggregate transition rates of Eq. (1) than to simulate every
peer's Poisson clock individually, because the number of distinct types is
tiny compared with the number of peers.  :class:`MarkovChainSimulator` does
exactly that and records a trajectory of sampled statistics.

The simulator is generic over a ``rate_function`` returning the outgoing
transitions of a state, so it is reused by the µ = ∞ watched chain of
Section VIII-D and by tests with hand-built toy chains.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, Hashable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

from ..core.parameters import SystemParameters
from ..core.state import SystemState
from ..core.transitions import Transition, outgoing_transitions
from .rng import SeedLike, make_rng

StateT = TypeVar("StateT", bound=Hashable)


@dataclass
class JumpRecord(Generic[StateT]):
    """One jump of the embedded chain (time of jump and the new state)."""

    time: float
    state: StateT


@dataclass
class CtmcTrajectory(Generic[StateT]):
    """A simulated trajectory: jump times, visited states and sampled values.

    ``samples`` holds ``(time, value)`` pairs produced by the optional
    ``observe`` callback on a fixed sampling grid, which keeps memory bounded
    for long runs.
    """

    initial_state: StateT
    jumps: List[JumpRecord[StateT]] = field(default_factory=list)
    samples: List[Tuple[float, float]] = field(default_factory=list)
    final_time: float = 0.0
    final_state: Optional[StateT] = None
    total_jumps: int = 0

    def sample_times(self) -> np.ndarray:
        return np.array([t for t, _ in self.samples])

    def sample_values(self) -> np.ndarray:
        return np.array([v for _, v in self.samples])


class GenericCtmcSimulator(Generic[StateT]):
    """Simulate any CTMC given a function enumerating outgoing transitions.

    Parameters
    ----------
    transition_function:
        Maps a state to a list of ``(rate, next_state)`` pairs.
    observe:
        Optional function mapping a state to a float recorded on the sampling
        grid (defaults to 0.0 when omitted).
    """

    def __init__(
        self,
        transition_function: Callable[[StateT], Sequence[Tuple[float, StateT]]],
        observe: Optional[Callable[[StateT], float]] = None,
    ):
        self._transitions = transition_function
        self._observe = observe if observe is not None else (lambda _state: 0.0)

    def run(
        self,
        initial_state: StateT,
        horizon: float,
        seed: SeedLike = None,
        sample_interval: Optional[float] = None,
        max_jumps: Optional[int] = None,
        record_jumps: bool = False,
        stop_condition: Optional[Callable[[StateT], bool]] = None,
    ) -> CtmcTrajectory[StateT]:
        """Simulate from ``initial_state`` until ``horizon`` (or a stop condition).

        ``sample_interval`` controls how often ``observe`` is recorded (defaults
        to ``horizon / 200``).  ``record_jumps`` additionally stores every jump,
        which is memory-hungry for long runs and off by default.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        rng = make_rng(seed)
        interval = sample_interval if sample_interval is not None else horizon / 200.0
        trajectory: CtmcTrajectory[StateT] = CtmcTrajectory(initial_state=initial_state)
        state = initial_state
        now = 0.0
        next_sample = 0.0
        jumps = 0
        while True:
            if stop_condition is not None and stop_condition(state):
                break
            if max_jumps is not None and jumps >= max_jumps:
                break
            options = self._transitions(state)
            total_rate = sum(rate for rate, _target in options)
            if total_rate <= 0:
                # Absorbing state: fast-forward to the horizon.
                now = horizon
                break
            wait = rng.exponential(1.0 / total_rate)
            # The current state holds on [now, now + wait): record every grid
            # point in that window *before* applying the jump, so samples
            # reflect the time-stationary state rather than post-jump states.
            next_jump_time = now + wait
            while next_sample <= horizon and next_sample < next_jump_time:
                trajectory.samples.append((next_sample, self._observe(state)))
                next_sample += interval
            if next_jump_time > horizon:
                now = horizon
                break
            now = next_jump_time
            threshold = rng.uniform(0.0, total_rate)
            cumulative = 0.0
            chosen = options[-1][1]
            for rate, target in options:
                cumulative += rate
                if threshold <= cumulative:
                    chosen = target
                    break
            state = chosen
            jumps += 1
            if record_jumps:
                trajectory.jumps.append(JumpRecord(time=now, state=state))
        # Remaining grid points (after the last jump, or when the run ended on
        # a stop condition / jump cap) carry the final state.
        while next_sample <= horizon:
            trajectory.samples.append((next_sample, self._observe(state)))
            next_sample += interval
        trajectory.final_time = now
        trajectory.final_state = state
        trajectory.total_jumps = jumps
        return trajectory


class MarkovChainSimulator:
    """Jump-chain simulator specialised to the P2P population chain.

    Uses the aggregate rates of Eq. (1), so one simulated jump corresponds to
    one arrival, one piece transfer, or one seed departure, regardless of how
    many peers are present.
    """

    def __init__(self, params: SystemParameters):
        self.params = params
        self._generic = GenericCtmcSimulator(
            transition_function=self._expand,
            observe=lambda state: float(state.total_peers),
        )

    def _expand(self, state: SystemState) -> List[Tuple[float, SystemState]]:
        return [
            (transition.rate, transition.target)
            for transition in outgoing_transitions(state, self.params)
        ]

    def run(
        self,
        initial_state: Optional[SystemState] = None,
        horizon: float = 1000.0,
        seed: SeedLike = None,
        sample_interval: Optional[float] = None,
        max_jumps: Optional[int] = None,
        observe: Optional[Callable[[SystemState], float]] = None,
        stop_condition: Optional[Callable[[SystemState], bool]] = None,
    ) -> CtmcTrajectory[SystemState]:
        """Simulate the population chain.

        By default the recorded observable is the total population ``n(t)``;
        pass ``observe`` to record something else (e.g. the one-club size).
        """
        start = (
            initial_state
            if initial_state is not None
            else SystemState.empty(self.params.num_pieces)
        )
        simulator = self._generic
        if observe is not None:
            simulator = GenericCtmcSimulator(self._expand, observe=observe)
        return simulator.run(
            initial_state=start,
            horizon=horizon,
            seed=seed,
            sample_interval=sample_interval,
            max_jumps=max_jumps,
            stop_condition=stop_condition,
        )


__all__ = [
    "JumpRecord",
    "CtmcTrajectory",
    "GenericCtmcSimulator",
    "MarkovChainSimulator",
]
