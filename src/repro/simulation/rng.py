"""Reproducible random-number streams for the simulators.

All stochastic components of the library take an explicit
:class:`numpy.random.Generator`.  Experiments that fan out replications use
:func:`spawn_generators`, which derives independent child streams from a
single seed via ``SeedSequence.spawn`` so that every replication is
independent yet the whole experiment is reproducible from one integer.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Create a generator from an int seed, a SeedSequence, or pass one through."""
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be nonnegative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Use the generator itself to derive a seed sequence deterministically.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def exponential(rng: np.random.Generator, rate: float) -> float:
    """Sample an Exp(rate) waiting time; ``inf`` when the rate is zero."""
    if rate < 0:
        raise ValueError(f"rate must be nonnegative, got {rate}")
    if rate == 0:
        return float("inf")
    return float(rng.exponential(1.0 / rate))


def poisson_arrival_times(
    rng: np.random.Generator, rate: float, horizon: float
) -> np.ndarray:
    """All arrival times of a rate-``rate`` Poisson process on ``[0, horizon]``."""
    if rate < 0 or horizon < 0:
        raise ValueError("rate and horizon must be nonnegative")
    if rate == 0 or horizon == 0:
        return np.empty(0)
    count = rng.poisson(rate * horizon)
    times = rng.uniform(0.0, horizon, size=count)
    times.sort()
    return times


__all__ = ["SeedLike", "make_rng", "spawn_generators", "exponential", "poisson_arrival_times"]
