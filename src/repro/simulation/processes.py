"""Point-process utilities: Poisson, compound Poisson, thinning.

These back the appendix results used in the transience proof:

* :class:`CompoundPoissonProcess` — batches arriving at Poisson times, the
  object of Kingman's moment bound (Proposition 20); the ABS download-counting
  process ``D̂̂`` is of this form.
* :func:`thin_poisson_times` — thinning of a Poisson process, the coupling
  device used throughout the proof of Lemma 2.
* :class:`MarkedPoissonProcess` — a superposition of independent Poisson
  streams with marks, used for the multi-type arrival process of the swarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .rng import SeedLike, make_rng, poisson_arrival_times


@dataclass
class CompoundPoissonSample:
    """One sampled path of a compound Poisson process on ``[0, horizon]``."""

    arrival_times: np.ndarray
    batch_sizes: np.ndarray

    def cumulative_at(self, times: Sequence[float]) -> np.ndarray:
        """Cumulative count at each query time."""
        queries = np.asarray(times, dtype=float)
        if self.arrival_times.size == 0:
            return np.zeros_like(queries)
        cumulative = np.cumsum(self.batch_sizes)
        indices = np.searchsorted(self.arrival_times, queries, side="right")
        result = np.zeros_like(queries)
        positive = indices > 0
        result[positive] = cumulative[indices[positive] - 1]
        return result

    @property
    def total(self) -> float:
        return float(self.batch_sizes.sum())


class CompoundPoissonProcess:
    """Compound Poisson process with a caller-supplied batch-size sampler.

    ``batch_sampler(rng, count)`` must return ``count`` i.i.d. batch sizes.
    ``batch_mean`` and ``batch_second_moment`` are needed only for the
    analytic Kingman bound; they can be estimated if not supplied.
    """

    def __init__(
        self,
        rate: float,
        batch_sampler: Callable[[np.random.Generator, int], np.ndarray],
        batch_mean: Optional[float] = None,
        batch_second_moment: Optional[float] = None,
    ):
        if rate < 0:
            raise ValueError(f"rate must be nonnegative, got {rate}")
        self.rate = rate
        self._sampler = batch_sampler
        self.batch_mean = batch_mean
        self.batch_second_moment = batch_second_moment

    @classmethod
    def with_constant_batches(cls, rate: float, batch: float) -> "CompoundPoissonProcess":
        return cls(
            rate=rate,
            batch_sampler=lambda _rng, count: np.full(count, batch, dtype=float),
            batch_mean=batch,
            batch_second_moment=batch * batch,
        )

    def sample(self, horizon: float, seed: SeedLike = None) -> CompoundPoissonSample:
        rng = make_rng(seed)
        times = poisson_arrival_times(rng, self.rate, horizon)
        batches = (
            self._sampler(rng, times.size)
            if times.size
            else np.empty(0, dtype=float)
        )
        return CompoundPoissonSample(arrival_times=times, batch_sizes=np.asarray(batches, dtype=float))

    def mean_rate(self) -> float:
        """Mean growth rate ``α m₁`` of the cumulative process."""
        if self.batch_mean is None:
            raise ValueError("batch_mean is not known")
        return self.rate * self.batch_mean


def kingman_exceedance_bound(
    rate: float,
    batch_mean: float,
    batch_second_moment: float,
    offset: float,
    slope: float,
) -> float:
    """Kingman's moment bound for compound Poisson processes (Proposition 20).

    Bounds ``P{C_t ≥ offset + slope · t for some t}`` by
    ``α m₂ / (2 offset (slope − α m₁))`` whenever ``slope > α m₁``; returns 1.0
    when the bound is vacuous.
    """
    if offset <= 0:
        return 1.0
    drift_gap = slope - rate * batch_mean
    if drift_gap <= 0:
        return 1.0
    bound = rate * batch_second_moment / (2.0 * offset * drift_gap)
    return min(1.0, bound)


def thin_poisson_times(
    times: Sequence[float],
    keep_probability: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Keep each point independently with probability ``keep_probability``."""
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep_probability must lie in [0, 1]")
    array = np.asarray(times, dtype=float)
    if array.size == 0:
        return array
    mask = rng.uniform(size=array.size) < keep_probability
    return array[mask]


class MarkedPoissonProcess:
    """Superposition of independent Poisson streams, one per mark.

    Used for the type-``C`` arrival processes: each mark (a peer type) has its
    own rate, and :meth:`sample` returns the merged, time-ordered sequence of
    ``(time, mark)`` pairs over a horizon.
    """

    def __init__(self, rates: Dict[Hashable, float]):
        for mark, rate in rates.items():
            if rate < 0:
                raise ValueError(f"rate for mark {mark!r} is negative")
        self.rates = dict(rates)

    @property
    def total_rate(self) -> float:
        return sum(self.rates.values())

    def sample(
        self, horizon: float, seed: SeedLike = None
    ) -> List[Tuple[float, Hashable]]:
        rng = make_rng(seed)
        events: List[Tuple[float, Hashable]] = []
        for mark, rate in self.rates.items():
            for time in poisson_arrival_times(rng, rate, horizon):
                events.append((float(time), mark))
        events.sort(key=lambda pair: pair[0])
        return events

    def next_mark(self, rng: np.random.Generator) -> Tuple[float, Hashable]:
        """Sample the waiting time to the next event and its mark."""
        total = self.total_rate
        if total <= 0:
            return float("inf"), None
        wait = rng.exponential(1.0 / total)
        threshold = rng.uniform(0.0, total)
        cumulative = 0.0
        marks = list(self.rates)
        for mark in marks:
            cumulative += self.rates[mark]
            if threshold <= cumulative:
                return wait, mark
        return wait, marks[-1]


__all__ = [
    "CompoundPoissonProcess",
    "CompoundPoissonSample",
    "MarkedPoissonProcess",
    "kingman_exceedance_bound",
    "thin_poisson_times",
]
