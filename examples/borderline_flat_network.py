"""The borderline symmetric flat network and the µ = ∞ watched process (Section VIII-D).

Run with::

    python examples/borderline_flat_network.py

In the symmetric flat network (every arriving peer holds exactly one piece,
all pieces equally likely, no fixed seed, peers leave on completion) Theorem 1
is silent: the parameters sit exactly on the boundary.  The paper analyses the
``µ → ∞`` limit watched on its slow states (Figure 3) and shows it is null
recurrent — excursions away from the near-empty states have no finite mean
peak.  Conjecture 17 speculates that for finite ``µ`` the system is positive
recurrent when ``µ/λ`` is small and null recurrent when it is large.

The script (i) verifies the zero drift of the top layer, (ii) shows the
excursion peaks of the watched process growing without stabilising, and (iii)
simulates the finite-µ swarm at a few values of ``µ/λ`` to illustrate the
conjectured behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.parameters import SystemParameters, uniform_single_piece_rates
from repro.core.stability import analyze
from repro.limits.mu_infinity import MuInfinityChain
from repro.swarm.swarm import run_swarm

NUM_PIECES = 3


def watched_process_section() -> None:
    chain = MuInfinityChain(num_pieces=NUM_PIECES, arrival_rate_per_piece=1.0)
    print(f"Top-layer drift of the mu = infinity watched process: {chain.top_layer_drift():g}")
    peaks = chain.excursion_peaks(1200, seed=7)
    rows = []
    for count in (100, 400, 1200):
        window = np.array(peaks[:count])
        rows.append((count, float(window.mean()), int(window.max())))
    print(
        format_table(
            headers=["excursions", "mean peak", "max peak"],
            rows=rows,
            title="Excursion peaks of the watched process (null recurrence: no stable mean)",
        )
    )
    print()


def finite_mu_section() -> None:
    rows = []
    for mu in (0.3, 1.0, 3.0):
        params = SystemParameters(
            num_pieces=NUM_PIECES,
            seed_rate=0.0,
            peer_rate=mu,
            seed_departure_rate=float("inf"),
            arrival_rates=uniform_single_piece_rates(NUM_PIECES, 1.0),
        )
        verdict = analyze(params).verdict.value
        result = run_swarm(params, horizon=300.0, seed=11, max_population=4000)
        metrics = result.metrics
        rows.append(
            (
                f"{mu:g}",
                verdict,
                metrics.peak_population,
                metrics.final_population,
                f"{metrics.population_slope():+.3f}",
            )
        )
    print(
        format_table(
            headers=["mu / lambda", "Theorem 1", "peak n", "final n", "growth /unit"],
            rows=rows,
            title=(
                "Finite-mu symmetric flat network (Conjecture 17 territory): "
                "Theorem 1 is silent on this boundary"
            ),
        )
    )


def main() -> None:
    watched_process_section()
    finite_mu_section()


if __name__ == "__main__":
    main()
