"""Watch the missing piece syndrome develop (Figure 2 of the paper).

Run with::

    python examples/missing_piece_syndrome.py

Starting from a flash crowd that has degenerated into a pure one club (every
peer holds all pieces except piece one), the script tracks the five peer
groups of Figure 2 — normal young, infected, gifted, one club, former one
club — in a transient configuration (the club keeps growing, trapping the
system) and in a stable one (the club drains and the system recovers).  It
also prints the predicted one-club growth rate ``Δ_{F−{1}}`` next to the
measured one.
"""

from __future__ import annotations

from repro import SystemParameters, SystemState, delta_s, PieceSet
from repro.analysis.statistics import linear_slope
from repro.analysis.tables import format_table
from repro.swarm import SwarmSimulator


def run_configuration(label: str, arrival_rate: float, seed_rate: float) -> None:
    params = SystemParameters.flash_crowd(
        num_pieces=3,
        arrival_rate=arrival_rate,
        seed_rate=seed_rate,
        peer_rate=1.0,
        seed_departure_rate=2.0,
    )
    predicted = delta_s(params, PieceSet.full(3).remove(1))
    simulator = SwarmSimulator(params, seed=7, track_groups=True)
    result = simulator.run(
        horizon=120.0,
        initial_state=SystemState.one_club(3, 60),
        max_population=4000,
        sample_interval=20.0,
    )
    metrics = result.metrics

    rows = []
    for snapshot in metrics.group_snapshots:
        rows.append(
            (
                f"{snapshot.time:.0f}",
                snapshot.normal_young,
                snapshot.infected,
                snapshot.gifted,
                snapshot.one_club,
                snapshot.former_one_club,
                f"{snapshot.one_club_fraction:.2f}",
            )
        )
    measured = linear_slope(metrics.sample_times, metrics.one_club_size)
    print(
        format_table(
            headers=["t", "young", "infected", "gifted", "one club", "former club", "club frac"],
            rows=rows,
            title=(
                f"{label}: lambda={arrival_rate:g}, Us={seed_rate:g} — "
                f"predicted club growth {predicted:+.2f}/unit, measured {measured:+.2f}/unit"
            ),
        )
    )
    print()


def main() -> None:
    # Threshold is Us / (1 - mu/gamma) = 1: arrivals above it trap the system.
    run_configuration("TRANSIENT (trapped by the one club)", arrival_rate=3.0, seed_rate=0.5)
    run_configuration("STABLE (escapes the one club)", arrival_rate=0.6, seed_rate=0.5)


if __name__ == "__main__":
    main()
