"""Fleet phase diagram, end to end: spec -> sharded fleet -> capture census.

Runs a fleet of a few dozen swarms cycled over an ``arrival_rate x
seed_rate`` grid (each drawn through a plain/free-rider scenario mix), every
swarm starting from a modest one-club, and prints the capture-prevalence
grid next to the Theorem-1 verdicts plus the fleet-level census (per-scenario
breakdown, theory-vs-outcome confusion counts, sojourn distributions).

The script then demonstrates the checkpoint machinery: the same fleet is
"killed" mid-run — after a few completed swarms *and* partway through the
next swarm, whose kernel state is snapshotted into the checkpoint — and
resumed from disk; the resumed fleet result is verified to be exactly equal
to the uninterrupted one.

Run with:  PYTHONPATH=src python examples/fleet_phase_diagram.py
"""

import tempfile
from pathlib import Path

from repro.experiments.fleet import run_fleet_phase_diagram
from repro.fleet import FleetScheduler, resume_fleet

ARRIVAL_RATES = (0.8, 1.6, 2.4, 3.2)
SEED_RATES = (0.5, 1.5)
SWARMS_PER_CELL = 4
SEED = 7


def main() -> None:
    diagram = run_fleet_phase_diagram(
        arrival_rates=ARRIVAL_RATES,
        seed_rates=SEED_RATES,
        swarms_per_cell=SWARMS_PER_CELL,
        horizon=50.0,
        max_events=8_000,
        backend="array",
        workers=2,
        seed=SEED,
    )
    print(diagram.report())
    print()

    # -- checkpoint / resume demo -------------------------------------------
    fleet = diagram.fleet
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "fleet.ckpt"
        scheduler = FleetScheduler(
            spec=diagram.spec, workers=2, checkpoint_path=checkpoint
        )
        partial = scheduler.run(
            seed=SEED, stop_after_swarms=5, suspend_after_events=500
        )
        print(
            f"killed the fleet after {len(partial.records)} of "
            f"{partial.num_swarms} swarms (one suspended mid-run in the "
            f"checkpoint); resuming from {checkpoint.name} ..."
        )
        resumed = resume_fleet(checkpoint, workers=2)
    assert resumed == fleet, "resumed fleet must equal the uninterrupted run"
    print(
        "resumed fleet reproduces the uninterrupted FleetResult exactly "
        f"({resumed.total_events} events, prevalence {resumed.prevalence():.1%})."
    )


if __name__ == "__main__":
    main()
