"""Quickstart: define a swarm, check Theorem 1, and simulate it.

Run with::

    python examples/quickstart.py

The script builds a flash-crowd style swarm (a 4-piece file, empty-handed
arrivals, a fixed seed), asks the stability theory for its verdict and the
critical parameter values, and then simulates the swarm on both sides of the
boundary to show the verdicts in action.
"""

from __future__ import annotations

from repro import (
    SystemParameters,
    analyze,
    critical_seed_rate,
    minimum_mean_dwell_time,
    run_swarm,
)
from repro.analysis.tables import format_table


def describe_point(label: str, params: SystemParameters, horizon: float = 200.0):
    """Theory verdict plus a short simulation summary for one parameter point."""
    report = analyze(params)
    result = run_swarm(params, horizon=horizon, seed=0, max_population=3000)
    metrics = result.metrics
    return (
        label,
        report.verdict.value,
        f"{report.margin:+.3g}",
        metrics.peak_population,
        f"{metrics.population_slope():.3f}",
    )


def main() -> None:
    # A 4-piece file, peers arrive empty-handed at rate lambda, the fixed seed
    # uploads at rate Us = 2, peers leave as soon as they are done (gamma = inf).
    stable = SystemParameters.flash_crowd(num_pieces=4, arrival_rate=1.2, seed_rate=2.0)
    unstable = SystemParameters.flash_crowd(num_pieces=4, arrival_rate=4.0, seed_rate=2.0)

    print("Parameters (stable point):")
    print(stable.describe())
    print()
    print("Theorem 1 report:")
    print(analyze(stable).describe())
    print()

    print(
        "Minimum fixed-seed rate for these arrivals:",
        f"{critical_seed_rate(unstable):.3g}",
    )
    print(
        "Minimum mean peer-seed dwell time that would stabilise the unstable point:",
        f"{minimum_mean_dwell_time(unstable):.3g}",
        "(<= one piece upload time 1/mu = 1)",
    )
    print()

    rows = [
        describe_point("lambda = 1.2 (stable)", stable),
        describe_point("lambda = 4.0 (unstable)", unstable),
        describe_point(
            "lambda = 4.0, dwell 1/gamma = 1.25",
            unstable.with_departure_rate(0.8),
        ),
    ]
    print(
        format_table(
            headers=["configuration", "theory", "margin", "peak n", "slope of n(t)"],
            rows=rows,
            title="Theory vs. a single simulation run (horizon 200)",
        )
    )


if __name__ == "__main__":
    main()
