"""Network coding as a bootstrap mechanism (Theorem 15).

Run with::

    python examples/network_coding_bootstrap.py

A tracker can hand each arriving client a small "welcome gift": one random
linear combination of the file's pieces.  Without coding, handing out random
*data* pieces does not help — the swarm with no fixed seed stays transient for
any gifted fraction below one.  With random linear coding, Theorem 15 shows a
tiny gifted fraction (on the order of ``1/K``) is enough to make the swarm
positive recurrent with no fixed seed at all.

The script prints the theoretical thresholds for several file sizes and field
sizes (including the paper's q = 64, K = 200 instance), then simulates a small
coded swarm below and above its threshold, next to the uncoded swarm.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.core.coding_theory import (
    gifted_fraction_thresholds,
    gifted_fraction_thresholds_exact,
    paper_example_table,
)
from repro.swarm.network_coding import CodedSwarmSimulator, gifted_fraction_arrivals


def threshold_table() -> None:
    rows = []
    for num_pieces, q in ((50, 2), (50, 16), (200, 64), (1000, 256)):
        lower, upper = gifted_fraction_thresholds(num_pieces, q)
        lower_exact, upper_exact = gifted_fraction_thresholds_exact(num_pieces, q)
        rows.append((num_pieces, q, lower, upper, lower_exact, upper_exact))
    print(
        format_table(
            headers=[
                "K",
                "q",
                "transient below (paper form)",
                "recurrent above (paper form)",
                "transient below (exact)",
                "recurrent above (exact)",
            ],
            rows=rows,
            title="Theorem 15: gifted-fraction thresholds (no fixed seed, gamma = inf)",
            float_format="{:.5g}",
        )
    )
    print()
    paper = paper_example_table()
    print(
        "Paper instance (q=64, K=200): transient below "
        f"{paper['transient_below']:.5f} (= {paper['transient_below_times_K']:.3f}/K), "
        f"recurrent above {paper['recurrent_above']:.5f} "
        f"(= {paper['recurrent_above_times_K']:.3f}/K)."
    )
    print("Without coding the same system is transient for every gifted fraction < 1.")
    print()


def simulate(num_pieces: int, q: int, gifted_fraction: float, seed: int) -> tuple:
    simulator = CodedSwarmSimulator(
        num_pieces=num_pieces,
        field_size=q,
        arrivals=gifted_fraction_arrivals(total_rate=2.0, gifted_fraction=gifted_fraction),
        seed=seed,
    )
    result = simulator.run(horizon=200.0, max_population=2500)
    metrics = result.metrics
    return (
        f"f = {gifted_fraction:g}",
        metrics.peak_population,
        result.final_population,
        f"{metrics.population_slope():+.2f}",
        f"{metrics.mean_download_time():.1f}" if metrics.download_times else "n/a",
    )


def main() -> None:
    threshold_table()

    num_pieces, q = 8, 7
    lower, upper = gifted_fraction_thresholds_exact(num_pieces, q)
    print(
        f"Simulated instance: K={num_pieces}, q={q} — exact thresholds "
        f"({lower:.3f}, {upper:.3f}) on the gifted fraction."
    )
    rows = [
        simulate(num_pieces, q, gifted_fraction=0.05, seed=1),
        simulate(num_pieces, q, gifted_fraction=0.6, seed=2),
    ]
    print(
        format_table(
            headers=["gifted fraction", "peak n", "final n", "growth /unit", "mean download time"],
            rows=rows,
            title="Coded swarm simulation (total arrival rate 2, horizon 200)",
        )
    )


if __name__ == "__main__":
    main()
