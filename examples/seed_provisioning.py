"""Capacity planning for a swarm operator: how much seeding is enough?

Run with::

    python examples/seed_provisioning.py

A content provider running a BitTorrent-like distribution service has two
levers to keep the swarm healthy: the upload capacity of its fixed seed
(``U_s``) and how long it asks clients to linger as peer seeds after
completing the download (``1/γ``).  This example uses the stability theory to
map out the trade-off for a range of expected arrival rates, then spot-checks
two provisioning choices with the simulator:

* an under-provisioned deployment (tiny seed, no lingering) that collapses
  into the missing piece syndrome, and
* the paper's recommendation — ask every client to stay just long enough to
  upload one extra piece — which stabilises the swarm with the same tiny seed.
"""

from __future__ import annotations

import math

from repro import (
    SystemParameters,
    analyze,
    critical_seed_rate,
    minimum_mean_dwell_time,
    run_swarm,
)
from repro.analysis.tables import format_table

NUM_PIECES = 8
PEER_RATE = 1.0  # one piece upload per time unit per peer


def provisioning_table() -> None:
    rows = []
    for arrival_rate in (0.5, 1.0, 2.0, 5.0, 10.0):
        base = SystemParameters.flash_crowd(
            num_pieces=NUM_PIECES,
            arrival_rate=arrival_rate,
            seed_rate=0.1,
            peer_rate=PEER_RATE,
        )
        rows.append(
            (
                arrival_rate,
                critical_seed_rate(base),
                minimum_mean_dwell_time(base),
            )
        )
    print(
        format_table(
            headers=[
                "arrival rate",
                "seed rate needed (no lingering)",
                "dwell time needed (tiny seed)",
            ],
            rows=rows,
            title=(
                "Provisioning options per Theorem 1 "
                f"(K={NUM_PIECES} pieces, peer upload rate mu={PEER_RATE:g})"
            ),
        )
    )
    print()
    print(
        "Note: the dwell column never exceeds one piece-upload time (1/mu = 1) —\n"
        "the paper's corollary: one extra uploaded piece per peer suffices,\n"
        "no matter how large the arrival rate is."
    )
    print()


def spot_check(label: str, params: SystemParameters) -> tuple:
    report = analyze(params)
    result = run_swarm(params, horizon=250.0, seed=3, max_population=5000)
    metrics = result.metrics
    return (
        label,
        report.verdict.value,
        metrics.peak_population,
        f"{metrics.population_slope():+.2f}",
        f"{metrics.mean_sojourn_time():.2f}",
    )


def main() -> None:
    provisioning_table()

    arrival_rate = 3.0
    under_provisioned = SystemParameters.flash_crowd(
        num_pieces=NUM_PIECES,
        arrival_rate=arrival_rate,
        seed_rate=0.25,
        peer_rate=PEER_RATE,
        seed_departure_rate=math.inf,
    )
    with_lingering = under_provisioned.with_departure_rate(PEER_RATE * 0.9)

    rows = [
        spot_check("tiny seed, no lingering", under_provisioned),
        spot_check("tiny seed, linger ~1 piece upload", with_lingering),
    ]
    print(
        format_table(
            headers=["deployment", "theory", "peak n", "growth /unit", "mean sojourn"],
            rows=rows,
            title=f"Spot check by simulation (arrival rate {arrival_rate:g} peers/unit)",
        )
    )


if __name__ == "__main__":
    main()
