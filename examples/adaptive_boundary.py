"""Adaptive boundary mapping, end to end: budget -> active sampling -> λ*.

Maps the Theorem-1 capture boundary with the budget-driven adaptive fleet
driver instead of a uniform grid: each round allocates swarms to the
``(λ, U_s, scenario)`` candidates whose Beta-posterior capture probability
is still uncertain (boosted near the empirical boundary), and sampling stops
when the boundary estimate stabilises or the swarm budget runs out.

The run streams one JSONL record per completed swarm into a fleet log — in
a second terminal you can watch it live with::

    tail -f <tmpdir>/adaptive.ckpt.jsonl

The script then demonstrates exact recovery: the same run is "killed"
mid-round (after a few completed swarms *and* partway through the next
swarm, whose kernel snapshot rides in the checkpoint) and resumed from the
JSONL log + snapshot; the resumed boundary estimate is verified to equal
the uninterrupted one.

Run with:  PYTHONPATH=src python examples/adaptive_boundary.py
"""

import tempfile
from pathlib import Path

from repro.experiments.fleet import run_adaptive_phase_diagram
from repro.fleet import (
    FleetResult,
    resume_adaptive_fleet,
    run_adaptive_fleet,
    tail_summary,
)

ARRIVAL_RATES = (0.4, 1.0, 1.6, 2.2)
SEED_RATES = (0.8, 1.6)
SWARM_BUDGET = 64
ROUND_SIZE = 8
SEED = 13


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "adaptive.ckpt"
        log = checkpoint.with_name(checkpoint.name + ".jsonl")

        result = run_adaptive_phase_diagram(
            arrival_rates=ARRIVAL_RATES,
            seed_rates=SEED_RATES,
            swarm_budget=SWARM_BUDGET,
            round_size=ROUND_SIZE,
            boundary_boost=8.0,
            scenario_mix=None,
            horizon=40.0,
            max_events=4_000,
            initial_club_size=20,
            workers=2,
            seed=SEED,
            checkpoint_path=checkpoint,
        )
        print(result.report())
        print()
        print(f"fleet log: {log}  ({tail_summary(log)})")
        print(f"census rebuilt from log == streamed census: "
              f"{FleetResult.from_log(log) == result.fleet}")

        # Kill the same run mid-round (and mid-swarm), then resume it from
        # the JSONL log + kernel snapshot.
        kill_at = SWARM_BUDGET // 3
        partial = run_adaptive_fleet(
            result.spec,
            seed=SEED,
            workers=2,
            checkpoint_path=checkpoint,
            stop_after_swarms=kill_at,
            suspend_after_events=60,
        )
        print(
            f"\nkilled after {len(partial.fleet.records)} swarms "
            f"(mid-round, kernel snapshot checkpointed); resuming ..."
        )
        resumed = resume_adaptive_fleet(checkpoint, workers=2)
        same = resumed.fingerprint() == result.fingerprint()
        print(f"resumed boundary estimate equals uninterrupted: {same}")
        assert same
        print(f"boundary estimate λ*: {resumed.boundary_estimate()}")


if __name__ == "__main__":
    main()
