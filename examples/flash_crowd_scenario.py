"""Flash-crowd scenario, end to end: spec -> run -> stability verdict.

A swarm that Theorem 1 certifies as stable at its base arrival rate is hit
by an 8x arrival surge for 40 time units.  The declarative
:class:`~repro.core.scenario.ScenarioSpec` drives the surge through the
simulator (no hand-editing of `SystemParameters` mid-run): the event loop
runs arrivals at the surge-peak rate and Poisson-thins them back down to
the instantaneous schedule rate, identically on both backends.

The script prints the scenario description, the theory verdicts at the base
and peak rates, the measured population/one-club trajectory around the
surge window, and the empirical trajectory classification.

Run with:  PYTHONPATH=src python examples/flash_crowd_scenario.py
"""

from repro.core.scenario import make_scenario
from repro.core.stability import analyze
from repro.experiments.runner import run_scenario
from repro.markov.classify import classify_trajectory

SURGE_START, SURGE_END, SURGE_FACTOR = 20.0, 60.0, 8.0
HORIZON = 100.0


def main() -> None:
    scenario = make_scenario(
        "flash-crowd",
        surge_start=SURGE_START,
        surge_end=SURGE_END,
        surge_factor=SURGE_FACTOR,
    )
    print(scenario.describe())
    print()

    base = analyze(scenario.params)
    peak = analyze(scenario.params.scaled_arrivals(SURGE_FACTOR))
    print(f"theory at base rate (lambda={scenario.params.lambda_total:g}): "
          f"{base.verdict.value}")
    print(f"theory at peak rate (lambda={scenario.peak_arrival_rate:g}): "
          f"{peak.verdict.value}")
    print()

    batch = run_scenario(
        scenario,
        horizon=HORIZON,
        replications=3,
        seed=7,
        backend="array",
        max_population=50_000,
    )
    metrics = batch.results[0].metrics

    print("time    population  one-club  phase")
    for time, population, club in zip(
        metrics.sample_times, metrics.population, metrics.one_club_size
    ):
        if time % 10.0 < 0.5:  # print roughly every 10 time units
            phase = "SURGE" if SURGE_START <= time < SURGE_END else "base"
            print(f"{time:6.1f}  {population:10d}  {club:8d}  {phase}")
    print()

    classification = classify_trajectory(
        metrics.sample_times,
        metrics.population,
        arrival_rate=scenario.peak_arrival_rate,
    )
    print(f"mean final population over {len(batch)} replications: "
          f"{batch.mean_final_population():.0f}")
    print(f"thinned candidate events (replication 0): {metrics.thinned_events}")
    print(f"empirical trajectory verdict: {classification.verdict.value}")
    print()
    print("The surge pushes the swarm past the Theorem-1 boundary while it "
          "lasts; whether the backlog drains afterwards depends on how much "
          "one-club mass the crowd left behind.")


if __name__ == "__main__":
    main()
