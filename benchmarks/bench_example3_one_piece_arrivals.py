"""E3 — Figure 1(c) / Example 3: one-piece arrivals, K = 3, dwelling seeds."""

import pytest

from repro.experiments.example3 import run_example3
from repro.markov.classify import TrajectoryVerdict

from conftest import print_report, run_once


def test_example3_stability_region(benchmark, capsys):
    result = run_once(
        benchmark,
        run_example3,
        peer_rate=1.0,
        seed_departure_rate=2.0,
        mixes=((1.0, 1.0, 1.0), (1.5, 1.2, 1.0), (4.0, 4.0, 0.5), (6.0, 1.0, 0.2)),
        horizon=250.0,
        replications=2,
        seed=33,
        # 5x the object-simulator population cap at the same wall-clock.
        max_population=12_500,
        backend="array",
    )
    print_report(capsys, "E3  Example 3 (K=3): arrival-mix sweep", result.report())
    trials = result.sweep.trials
    # Paper prediction: symmetric mixes are stable, strongly skewed ones are not
    # (lambda_i + lambda_j vs lambda_k (2 + mu/gamma)/(1 - mu/gamma) = 5 lambda_k).
    assert trials[0].theory.is_stable
    assert trials[2].theory.is_unstable and trials[3].theory.is_unstable
    assert trials[0].empirical_verdict is not TrajectoryVerdict.UNSTABLE
    assert trials[2].empirical_verdict is TrajectoryVerdict.UNSTABLE
    assert result.sweep.agreement_fraction() >= 0.5
    # The closed-form inequality table matches the amplification factor 5.
    for _label, rows in result.inequality_tables[:1]:
        for _name, lhs, rhs in rows:
            assert rhs == pytest.approx(5.0)
            assert lhs == pytest.approx(2.0)
