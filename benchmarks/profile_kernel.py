"""Profile the swarm-kernel hot path: cProfile plus a per-phase timing table.

Future perf PRs should start from data, not guesses.  This script runs the
reference ``BENCH_WORKLOAD`` (or the scenario variant) twice:

1. under ``cProfile``, printing the top functions by cumulative time, and
2. with lightweight phase instrumentation, timing the three stages of the
   event loop —

   * **draw** — pre-drawing uniform blocks (``DrawBuffer._refill``: the only
     place the numpy ``Generator`` is touched),
   * **apply** — event application, split into the vectorized batch stage
     (``_batch_stage``) and the scalar dispatch (``_apply_event``),
   * **census** — sample-grid metric recording (``_record_sample``)

   — and printing a phase / calls / seconds / share table.  Whatever is left
   over is the residual scalar loop (rate recomputation, bound checks).

With ``--stacked`` the script profiles the *fleet* workload
(``FLEET_BENCH_WORKLOAD``) through one ``StackedSwarmKernel`` instead of a
solo kernel — the phase table then splits the stacked round loop into the
per-lane scalar drive, the lane-local thinned batches and the shared
sampling/refill phases.

Usage::

    PYTHONPATH=src python benchmarks/profile_kernel.py
    PYTHONPATH=src python benchmarks/profile_kernel.py --backend object
    PYTHONPATH=src python benchmarks/profile_kernel.py --scenario --events 100000
    PYTHONPATH=src python benchmarks/profile_kernel.py --topology     # tracker overlay
    PYTHONPATH=src python benchmarks/profile_kernel.py --block-size 1   # scalar draws
    PYTHONPATH=src python benchmarks/profile_kernel.py --stacked        # fleet mega-kernel

With ``--topology`` the phase table gains overlay rows — arrival wiring,
churn rewiring and the per-contact neighbor draw — so overlay overhead is
attributable next to the draw/apply/census split.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import time
from contextlib import contextmanager

from conftest import (
    BENCH_WORKLOAD,
    FLEET_BENCH_WORKLOAD,
    OVERLAY_BENCH_WORKLOAD,
    SCENARIO_BENCH_WORKLOAD,
    _fleet_bench_spec,
    _overlay_bench_spec,
    _scenario_bench_spec,
)


def _build(args):
    from repro.core.parameters import SystemParameters
    from repro.core.state import SystemState
    from repro.swarm.swarm import make_simulator

    if args.topology:
        spec = dict(OVERLAY_BENCH_WORKLOAD)
        scenario = _overlay_bench_spec()
    elif args.scenario:
        spec = dict(SCENARIO_BENCH_WORKLOAD)
        scenario = _scenario_bench_spec()
    else:
        spec = dict(BENCH_WORKLOAD)
        scenario = None
    spec["max_events"] = args.events
    params = (
        scenario.params
        if scenario is not None
        else SystemParameters.flash_crowd(
            num_pieces=spec["num_pieces"],
            arrival_rate=spec["arrival_rate"],
            seed_rate=spec["seed_rate"],
            peer_rate=spec["peer_rate"],
            seed_departure_rate=spec["seed_departure_rate"],
        )
    )
    simulator = make_simulator(
        params,
        seed=spec["seed"],
        backend=args.backend,
        scenario=scenario,
        draw_block_size=args.block_size,
    )
    initial = SystemState.one_club(spec["num_pieces"], spec["initial_one_club"])
    run_kwargs = dict(
        initial_state=initial,
        sample_interval=spec["sample_interval"],
        max_events=spec["max_events"],
    )
    return simulator, spec["horizon"], run_kwargs


@contextmanager
def _phase_timers():
    """Patch the phase entry points with accumulating timers (class-level,
    restored on exit): phase name -> [calls, seconds]."""
    from repro.swarm.drawbuf import DrawBuffer
    from repro.swarm.kernel import ArraySwarmKernel
    from repro.swarm.swarm import SwarmSimulator, _SwarmEventLoop
    from repro.swarm.topology import OverlayState

    totals: dict = {}
    patched = []

    def instrument(owner, name, phase):
        original = getattr(owner, name)
        bucket = totals.setdefault(phase, [0, 0.0])

        def timed(self, *call_args, **call_kwargs):
            start = time.perf_counter()
            try:
                return original(self, *call_args, **call_kwargs)
            finally:
                bucket[0] += 1
                bucket[1] += time.perf_counter() - start

        setattr(owner, name, timed)
        patched.append((owner, name, original))

    instrument(DrawBuffer, "_refill", "draw (block refill)")
    instrument(ArraySwarmKernel, "_batch_stage", "apply (batch stage)")
    instrument(_SwarmEventLoop, "_apply_event", "apply (scalar dispatch)")
    # _record_sample lives on each backend, not the shared driver.
    instrument(ArraySwarmKernel, "_record_sample", "census (sampling)")
    instrument(SwarmSimulator, "_record_sample", "census (sampling)")
    # Overlay rows stay at zero calls (and are omitted from the table)
    # unless the workload carries a topology (``--topology``).
    instrument(OverlayState, "on_arrival", "overlay (arrival wiring)")
    instrument(OverlayState, "on_departure", "overlay (churn rewiring)")
    instrument(OverlayState, "draw_target", "overlay (target draw)")
    try:
        yield totals
    finally:
        for owner, name, original in patched:
            setattr(owner, name, original)


def run_phase_table(args) -> None:
    simulator, horizon, run_kwargs = _build(args)
    with _phase_timers() as totals:
        start = time.perf_counter()
        result = simulator.run(horizon, **run_kwargs)
        wall = time.perf_counter() - start
    events = result.events_executed
    print(
        f"\nPer-phase timing — backend={args.backend}, "
        f"{events:,} events in {wall:.3f}s "
        f"({events / wall:,.0f} ev/s, final population "
        f"{result.final_population:,})"
    )
    print(f"{'phase':<28}{'calls':>12}{'seconds':>12}{'share':>9}")
    accounted = 0.0
    for phase, (calls, seconds) in totals.items():
        if not calls:
            continue
        # The scalar dispatch is also reached through the batch stage's
        # fall-through iterations, so phases can nest; shares are of wall.
        accounted += seconds
        print(f"{phase:<28}{calls:>12,}{seconds:>12.3f}{seconds / wall:>8.1%}")
    residual = max(wall - accounted, 0.0)
    print(f"{'residual (scalar loop)':<28}{'—':>12}{residual:>12.3f}{residual / wall:>8.1%}")


def run_cprofile(args, top: int = 25) -> None:
    simulator, horizon, run_kwargs = _build(args)
    profiler = cProfile.Profile()
    profiler.enable()
    simulator.run(horizon, **run_kwargs)
    profiler.disable()
    print(f"\ncProfile — top {top} by cumulative time")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def _build_stacked(args):
    """One StackedSwarmKernel loaded with the whole fleet bench workload."""
    import numpy as np

    from repro.core.state import SystemState
    from repro.fleet.spec import materialize_tasks
    from repro.swarm.stacked import StackedSwarmKernel

    fleet_spec = _fleet_bench_spec()
    tasks = materialize_tasks(fleet_spec, seed=FLEET_BENCH_WORKLOAD["seed"])
    stack = StackedSwarmKernel()
    for task in tasks:
        stack.add_lane(
            task.params,
            seed=np.random.default_rng(task.seed),
            scenario=task.scenario,
        )
    initial_states = [
        SystemState.one_club(task.params.num_pieces, fleet_spec.initial_club_size)
        for task in tasks
    ]
    run_kwargs = dict(
        initial_states=initial_states,
        sample_interval=fleet_spec.sample_interval,
        max_events=fleet_spec.max_events,
        max_population=fleet_spec.max_population,
    )
    return stack, fleet_spec.horizon, run_kwargs


def run_stacked_phase_table(args) -> None:
    from repro.swarm.drawbuf import DrawBuffer
    from repro.swarm.kernel import ArraySwarmKernel
    from repro.swarm.swarm import _SwarmEventLoop

    totals: dict = {}
    patched = []

    def instrument(owner, name, phase):
        original = getattr(owner, name)
        bucket = totals.setdefault(phase, [0, 0.0])

        def timed(self, *call_args, **call_kwargs):
            start = time.perf_counter()
            try:
                return original(self, *call_args, **call_kwargs)
            finally:
                bucket[0] += 1
                bucket[1] += time.perf_counter() - start

        setattr(owner, name, timed)
        patched.append((owner, name, original))

    instrument(DrawBuffer, "_refill", "draw (block refill)")
    instrument(_SwarmEventLoop, "_apply_event", "apply (scalar dispatch)")
    instrument(ArraySwarmKernel, "_record_sample", "census (sampling)")
    # Per-event-type breakdown of the cohort dispatch: the typed primitives
    # the round loop applies classified events through.  ``dispatch ·
    # peer tick`` nests ``dispatch · transfer`` (the tick draws the target,
    # the transfer moves the piece), so the rows overlap; shares are of
    # wall, not of each other.
    instrument(_SwarmEventLoop, "_apply_arrival_event", "dispatch · arrival")
    instrument(_SwarmEventLoop, "_apply_seed_tick_event", "dispatch · seed tick")
    instrument(_SwarmEventLoop, "_apply_peer_tick_event", "dispatch · peer tick")
    instrument(ArraySwarmKernel, "_apply_transfer_tick", "dispatch · transfer")
    instrument(_SwarmEventLoop, "_apply_departure_event", "dispatch · departure")
    instrument(ArraySwarmKernel, "_batch_thinned", "dispatch · thinned")
    stack, horizon, run_kwargs = _build_stacked(args)
    try:
        start = time.perf_counter()
        results = stack.run_all(horizon, **run_kwargs)
        wall = time.perf_counter() - start
    finally:
        for owner, name, original in patched:
            setattr(owner, name, original)
    events = sum(result.events_executed for result in results)
    print(
        f"\nPer-phase timing — stacked fleet, {stack.num_lanes} lanes, "
        f"{events:,} events in {wall:.3f}s ({events / wall:,.0f} aggregate ev/s)"
    )
    print(f"{'phase':<28}{'calls':>12}{'seconds':>12}{'share':>9}")
    accounted = 0.0
    for phase, (calls, seconds) in totals.items():
        if not calls:
            continue
        # The typed-dispatch rows are a *breakdown* (and peer tick nests
        # transfer), so they don't add into the residual accounting.
        if not phase.startswith("dispatch ·"):
            accounted += seconds
        print(f"{phase:<28}{calls:>12,}{seconds:>12.3f}{seconds / wall:>8.1%}")
    residual = max(wall - accounted, 0.0)
    print(
        f"{'residual (round loop)':<28}{'—':>12}{residual:>12.3f}"
        f"{residual / wall:>8.1%}"
    )


def run_stacked_cprofile(args, top: int = 25) -> None:
    stack, horizon, run_kwargs = _build_stacked(args)
    profiler = cProfile.Profile()
    profiler.enable()
    stack.run_all(horizon, **run_kwargs)
    profiler.disable()
    print(f"\ncProfile — top {top} by cumulative time")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)


def main() -> None:
    parser = argparse.ArgumentParser(
        description="cProfile + per-phase timing of the swarm kernels."
    )
    parser.add_argument("--backend", choices=("array", "object"), default="array")
    parser.add_argument(
        "--events",
        type=int,
        default=BENCH_WORKLOAD["max_events"],
        help="event cap (default: the BENCH_swarm.json workload's)",
    )
    workload = parser.add_mutually_exclusive_group()
    workload.add_argument(
        "--scenario",
        action="store_true",
        help="profile the heterogeneous flash-crowd scenario workload",
    )
    workload.add_argument(
        "--topology",
        action="store_true",
        help="profile the tracker-overlay workload (adds overlay phase rows)",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        help="draw-buffer block size (default 4096; 1 = scalar draws)",
    )
    parser.add_argument(
        "--stacked",
        action="store_true",
        help="profile the fleet workload through the stacked mega-kernel",
    )
    parser.add_argument(
        "--skip-cprofile", action="store_true", help="phase table only"
    )
    args = parser.parse_args()
    if args.stacked:
        run_stacked_phase_table(args)
        if not args.skip_cprofile:
            run_stacked_cprofile(args)
        return
    run_phase_table(args)
    if not args.skip_cprofile:
        run_cprofile(args)


if __name__ == "__main__":
    main()
