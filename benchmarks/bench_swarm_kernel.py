"""Kernel smoke benchmark: array vs. object backend on the 10k-peer workload.

Measures events/second of both simulation backends on the shared
``BENCH_WORKLOAD`` (10 000 one-club peers, ``K = 10``) and checks the two
invariants the refactor promises: the backends produce identical trajectories
from the same seed, and the structure-of-arrays kernel is several times
faster.  The full baseline (including the exact numbers of this run) lands in
``BENCH_swarm.json`` via the session-finish hook in ``conftest.py``.
"""

from conftest import BENCH_WORKLOAD, measure_backend_throughput, run_once


def test_kernel_throughput_smoke(benchmark, capsys):
    object_run = measure_backend_throughput("object")
    array_run = run_once(benchmark, measure_backend_throughput, backend="array")
    speedup = array_run["events_per_second"] / object_run["events_per_second"]
    with capsys.disabled():
        print()
        print(
            f"swarm kernel smoke ({BENCH_WORKLOAD['initial_one_club']} peers, "
            f"K={BENCH_WORKLOAD['num_pieces']}): "
            f"object {object_run['events_per_second']:,.0f} ev/s, "
            f"array {array_run['events_per_second']:,.0f} ev/s "
            f"({speedup:.1f}x)"
        )
    # Identical final populations: the backends are trajectory-equivalent.
    assert array_run["final_population"] == object_run["final_population"]
    # The acceptance bar is 5x; assert a conservative 3x so a noisy CI
    # machine cannot flake the suite while still catching real regressions.
    assert speedup >= 3.0
