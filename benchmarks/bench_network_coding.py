"""E6 — Theorem 15: network coding with gifted arrivals.

Reproduces the paper's worked example numbers (q = 64, K = 200: thresholds
~1.014/K and ~1.032/K on the gifted fraction) and simulates a small coded
instance on both sides of its threshold, next to the uncoded system which is
transient for every gifted fraction below one.
"""

import pytest

from repro.experiments.coding import run_coding_experiment

from conftest import print_report, run_once


def test_network_coding_gifted_fraction(benchmark, capsys):
    result = run_once(
        benchmark,
        run_coding_experiment,
        num_pieces=8,
        field_size=7,
        total_rate=2.0,
        low_fraction=0.05,
        high_fraction=0.6,
        uncoded_fraction=0.6,
        horizon=200.0,
        seed=66,
        max_population=2500,
    )
    print_report(capsys, "E6  Theorem 15: network coding", result.report())
    # Paper numbers for q=64, K=200 (quoted as 1.014/K and 1.032/K).
    assert result.paper_numbers["transient_below_times_K"] == pytest.approx(1.016, abs=0.01)
    assert result.paper_numbers["recurrent_above_times_K"] == pytest.approx(1.032, abs=0.01)
    coded_low, coded_high, uncoded = result.rows
    # Above the threshold the coded swarm stays small; the uncoded swarm with
    # the same gifted fraction cannot recover from a one-club heavy load;
    # below the threshold the coded swarm grows too.
    assert coded_high.final_population < 0.3 * uncoded.final_population
    assert coded_low.final_population > 3 * coded_high.final_population
    assert uncoded.verdict == "unstable"
    assert uncoded.normalized_slope > 0.2
