"""E1 — Figure 1(a) / Example 1: single-piece system, threshold Us/(1 − µ/γ).

Regenerates the Example-1 stability boundary: a sweep of the arrival rate
``λ_0`` across the theoretical threshold, with the Theorem-1 verdict and the
simulated verdict side by side.
"""

import pytest

from repro.experiments.example1 import run_example1
from repro.markov.classify import TrajectoryVerdict

from conftest import print_report, run_once


def test_example1_stability_boundary(benchmark, capsys):
    result = run_once(
        benchmark,
        run_example1,
        seed_rate=2.0,
        peer_rate=1.0,
        seed_departure_rate=2.0,
        relative_rates=(0.5, 0.8, 1.5, 2.0),
        horizon=250.0,
        replications=2,
        seed=11,
        # The array kernel sustains a 5x larger population cap than the
        # object simulator did at the same wall-clock budget.
        max_population=12_500,
        backend="array",
    )
    print_report(capsys, "E1  Example 1 (K=1): lambda_0 sweep", result.report())
    # Paper prediction: threshold = Us / (1 - mu/gamma) = 2 / 0.5 = 4.
    assert result.threshold == pytest.approx(4.0)
    trials = result.sweep.trials
    # The extreme points must agree with Theorem 1.
    assert trials[0].empirical_verdict is not TrajectoryVerdict.UNSTABLE  # 0.5x
    assert trials[-1].empirical_verdict is TrajectoryVerdict.UNSTABLE  # 2.0x
    assert result.sweep.agreement_fraction() >= 0.5
