"""E9 — Section VII machinery: Foster–Lyapunov drift of W on heavy-load states."""

import pytest

from repro.experiments.lyapunov_exp import run_lyapunov_experiment

from conftest import print_report, run_once


def test_lyapunov_drift_on_heavy_load_states(benchmark, capsys):
    result = run_once(
        benchmark,
        run_lyapunov_experiment,
        populations=(200, 500),
        states_per_population=10,
        seed=99,
    )
    print_report(capsys, "E9  Lyapunov drift of W on heavy-load states", result.report())
    stable_rows = [row for row in result.rows if row.label == "stable"]
    unstable_rows = [row for row in result.rows if row.label == "unstable"]
    # Inside the stability region the drift on one-club states is negative and
    # the bulk of heavy-load states have negative drift at large populations.
    for row in stable_rows:
        assert row.one_club_drift_per_peer < 0
    assert stable_rows[-1].fraction_negative >= 0.8
    # Outside the region the one-club drift is positive (the club grows).
    assert any(row.one_club_drift_per_peer > 0 for row in unstable_rows)
