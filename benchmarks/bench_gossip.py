"""Gossip smoke benchmark: both backends on the gossip-census workload.

Measures events/second of the object simulator and the array kernel on the
shared ``GOSSIP_BENCH_WORKLOAD`` (10 000 one-club peers, ``K = 10``,
policies reading the flow-updating gossip census), asserting the gossip
subsystem's invariants: the backends stay trajectory-identical from a
shared seed with the extra per-tick gossip uniform in the draw stream, and
the array kernel keeps a clear lead even though an active gossip census
disables its cross-event batch stage (every event takes the scalar path, so
this workload is the honest price of the estimator — measured ~9x over
object, against ~400x for the batchable reference workload).  The numbers
land in the ``"gossip"`` section of ``BENCH_swarm.json`` via the
session-finish hook in ``conftest.py``, so gossip-path regressions are
visible per-PR next to the oracle-census baselines.
"""

from conftest import (
    GOSSIP_BENCH_WORKLOAD,
    measure_gossip_throughput,
    run_once,
)


def test_gossip_throughput_smoke(benchmark, capsys):
    object_run = measure_gossip_throughput("object")
    array_run = run_once(benchmark, measure_gossip_throughput, backend="array")
    speedup = array_run["events_per_second"] / object_run["events_per_second"]
    with capsys.disabled():
        print()
        print(
            f"gossip smoke ({GOSSIP_BENCH_WORKLOAD['initial_one_club']} "
            f"peers, K={GOSSIP_BENCH_WORKLOAD['num_pieces']}, "
            f"exchange_rate {GOSSIP_BENCH_WORKLOAD['exchange_rate']}): "
            f"object {object_run['events_per_second']:,.0f} ev/s, "
            f"array {array_run['events_per_second']:,.0f} ev/s "
            f"({speedup:.1f}x)"
        )
    # Trajectory equivalence holds with the gossip draw in the stream too.
    assert array_run["final_population"] == object_run["final_population"]
    # Gossip disables the kernel's batch stage (policy reads depend on the
    # downloader's live estimate), so the margin is the SoA scalar path's
    # alone — it must still keep the kernel clearly ahead.
    assert speedup >= 3.0
