"""E8 — the headline corollary: a dwell time of one piece upload stabilises the system."""

import math

import pytest

from repro.experiments.dwell_time import run_dwell_time_experiment
from repro.markov.classify import TrajectoryVerdict

from conftest import print_report, run_once


def test_peer_seed_dwell_sweep(benchmark, capsys):
    result = run_once(
        benchmark,
        run_dwell_time_experiment,
        arrival_rate=2.0,
        seed_rate=0.2,
        num_pieces=3,
        peer_rate=1.0,
        gamma_values=(0.8, 1.05, 2.0, math.inf),
        horizon=280.0,
        replications=2,
        seed=88,
        # 5x the object-simulator population cap at the same wall-clock.
        max_population=12_500,
        backend="array",
    )
    print_report(capsys, "E8  Peer-seed dwell time sweep", result.report())
    # Paper prediction: stability for gamma <= gamma* with gamma* >= mu, i.e.
    # a mean dwell of at most one piece-upload time (1/mu) always suffices.
    assert result.minimum_dwell <= 1.0 / result.peer_rate + 1e-9
    assert result.critical_gamma == pytest.approx(2.0 / 1.8, rel=1e-6)
    trials = result.sweep.trials
    # gamma = 0.8 and 1.05 are inside the stable region; 2.0 and inf outside.
    assert trials[0].theory.is_stable and trials[1].theory.is_stable
    assert trials[2].theory.is_unstable and trials[3].theory.is_unstable
    assert trials[0].empirical_verdict is not TrajectoryVerdict.UNSTABLE
    assert trials[3].empirical_verdict is TrajectoryVerdict.UNSTABLE
    assert result.sweep.agreement_fraction() >= 0.5
