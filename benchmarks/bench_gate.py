"""CLI shim for the benchmark regression gate (CI ``bench-gate`` job).

Usage::

    PYTHONPATH=src python benchmarks/bench_gate.py \
        --baseline BENCH_swarm.json --current fresh/BENCH_swarm.json

Exits non-zero when any ``events_per_second`` dropped beyond the tolerance
(default 30%; override with ``--tolerance`` or ``BENCH_GATE_TOLERANCE``).
The before/after table is printed and, when ``GITHUB_STEP_SUMMARY`` is set,
appended to the job summary.  All logic lives in
:mod:`repro.analysis.bench_gate` so it is unit-tested with the library.
"""

import sys

from repro.analysis.bench_gate import main

if __name__ == "__main__":
    sys.exit(main())
