"""Fleet smoke benchmark: 200-swarm / 100k-peer fleet on the array kernel.

Measures the aggregate events/second of the shared ``FLEET_BENCH_WORKLOAD``
— 200 swarms of 500 one-club peers each (100 000 peers in flight), drawn
through a mixed plain / flash-crowd / free-rider scenario distribution and
scheduled through ``repro.fleet`` on the array backend — and asserts the
invariants the fleet layer promises: every swarm runs its full event budget,
all three mix entries actually occur, and the sharded scheduler's result is
identical at a different worker count.  The measurement lands in the
``"fleet"`` section of ``BENCH_swarm.json`` via the session-finish hook in
``conftest.py``, so fleet-path regressions are visible per-PR next to the
kernel baselines.
"""

from conftest import FLEET_BENCH_WORKLOAD, measure_fleet_throughput, run_once


def test_fleet_throughput_smoke(benchmark, capsys):
    measurement = run_once(benchmark, measure_fleet_throughput)
    with capsys.disabled():
        print()
        print(
            f"fleet smoke ({measurement['num_swarms']} swarms, "
            f"{measurement['total_initial_peers']:,} peers, mixed scenarios): "
            f"{measurement['events_per_second']:,.0f} aggregate ev/s, "
            f"prevalence {measurement['one_club_prevalence']:.1%}"
        )
    spec = FLEET_BENCH_WORKLOAD
    # Every swarm must be cut off by its event budget (otherwise the
    # events/sec figure would be computed against a mis-sized workload).
    assert measurement["events"] == spec["num_swarms"] * spec["max_events_per_swarm"]
    # The mixed scenario distribution must actually mix.
    assert set(measurement["scenarios"]) == {"plain", "flash-crowd", "free-rider"}
    assert all(count > 0 for count in measurement["scenarios"].values())
