"""Fleet smoke benchmark: 200-swarm / 100k-peer fleet on the array kernel.

Measures the aggregate events/second of the shared ``FLEET_BENCH_WORKLOAD``
— 200 swarms of 500 one-club peers each (100 000 peers in flight), drawn
through a mixed plain / flash-crowd / free-rider scenario distribution and
scheduled through ``repro.fleet`` on the array backend — and asserts the
invariants the fleet layer promises: every swarm runs its full event budget,
all three mix entries actually occur, and the sharded scheduler's result is
identical at a different worker count.  The same workload is then measured
through the stacked mega-kernel path (``stacked=True``), whose result must
be bit-identical, and through the supervised execution path
(``max_retries=1``, again bit-identical).  All measurements land in the ``"fleet"`` section of
``BENCH_swarm.json`` via the session-finish hook in ``conftest.py``, so
fleet-path regressions — per-swarm and stacked — are visible per-PR next to
the kernel baselines.
"""

import time

from conftest import FLEET_BENCH_WORKLOAD, measure_fleet_throughput, run_once


def test_fleet_throughput_smoke(benchmark, capsys):
    measurement = run_once(benchmark, measure_fleet_throughput)
    with capsys.disabled():
        print()
        print(
            f"fleet smoke ({measurement['num_swarms']} swarms, "
            f"{measurement['total_initial_peers']:,} peers, mixed scenarios): "
            f"{measurement['events_per_second']:,.0f} aggregate ev/s, "
            f"prevalence {measurement['one_club_prevalence']:.1%}"
        )
    spec = FLEET_BENCH_WORKLOAD
    # Every swarm must be cut off by its event budget (otherwise the
    # events/sec figure would be computed against a mis-sized workload).
    assert measurement["events"] == spec["num_swarms"] * spec["max_events_per_swarm"]
    # The mixed scenario distribution must actually mix.
    assert set(measurement["scenarios"]) == {"plain", "flash-crowd", "free-rider"}
    assert all(count > 0 for count in measurement["scenarios"].values())


def test_fleet_stacked_throughput_smoke(benchmark, capsys):
    """The stacked mega-kernel path of the same fleet workload.

    Runs the identical 200-swarm workload with ``stacked=True`` (every chunk
    simulated inside one ``StackedSwarmKernel``), asserts the aggregate
    result is *bit-identical* to the per-swarm path — same fingerprint,
    so same records, census and histograms — and records the measurement
    into the ``fleet.stacked`` section of ``BENCH_swarm.json`` via the
    session-finish hook, putting the stacked path under the CI bench gate
    alongside the per-swarm figure.
    """
    from repro.fleet import run_fleet

    from conftest import _fleet_bench_spec

    measurement = run_once(
        benchmark, measure_fleet_throughput, stacked=True
    )
    with capsys.disabled():
        print()
        print(
            f"fleet stacked smoke ({measurement['num_swarms']} swarms, "
            f"{measurement['total_initial_peers']:,} peers, mixed scenarios): "
            f"{measurement['events_per_second']:,.0f} aggregate ev/s"
        )
    spec = FLEET_BENCH_WORKLOAD
    assert measurement["events"] == spec["num_swarms"] * spec["max_events_per_swarm"]
    assert set(measurement["scenarios"]) == {"plain", "flash-crowd", "free-rider"}
    # Bit-identical to the per-swarm path: the stacked kernel is a pure
    # throughput change, never a semantic one.
    fleet_spec = _fleet_bench_spec()
    per_swarm = run_fleet(fleet_spec, seed=spec["seed"])
    stacked = run_fleet(fleet_spec, seed=spec["seed"], stacked=True)
    assert stacked.fingerprint() == per_swarm.fingerprint()


def test_fleet_supervised_throughput_smoke(benchmark, capsys):
    """The supervised execution path of the same fleet workload.

    Runs the identical 200-swarm workload with worker supervision switched
    on (``max_retries=1``; no faults injected, so nothing actually retries)
    and asserts the result is *bit-identical* to the unsupervised path with
    zero failed records — supervision is pure insurance, never a semantic
    change.  The measurement lands in ``fleet.supervised`` of
    ``BENCH_swarm.json`` via the session-finish hook, putting the retry
    wrapper's bookkeeping overhead under the CI bench gate.
    """
    from repro.fleet import run_fleet

    from conftest import _fleet_bench_spec

    measurement = run_once(benchmark, measure_fleet_throughput, supervised=True)
    with capsys.disabled():
        print()
        print(
            f"fleet supervised smoke ({measurement['num_swarms']} swarms, "
            f"max_retries=1, no faults): "
            f"{measurement['events_per_second']:,.0f} aggregate ev/s"
        )
    spec = FLEET_BENCH_WORKLOAD
    assert measurement["events"] == spec["num_swarms"] * spec["max_events_per_swarm"]
    fleet_spec = _fleet_bench_spec()
    unsupervised = run_fleet(fleet_spec, seed=spec["seed"])
    supervised = run_fleet(fleet_spec, seed=spec["seed"], max_retries=1)
    assert supervised.failed_count == 0
    assert supervised.fingerprint() == unsupervised.fingerprint()


def test_fleet_log_fsync_batching(benchmark, capsys, tmp_path):
    """The ``fsync_every_n`` knob amortizes log durability over batches.

    Runs a logged slice of the fleet workload at fsync-per-append (the
    default durability) and at ``fsync_every_n=32``, prints both wall
    clocks, and asserts the two runs produce byte-identical logs — batching
    only changes *when* bytes hit the platter, never what is written.
    """
    from repro.fleet import run_fleet

    from conftest import _fleet_bench_spec

    spec = _fleet_bench_spec()
    seed = FLEET_BENCH_WORKLOAD["seed"]
    timings = {}

    def logged_run(fsync_every_n, label):
        log_path = tmp_path / f"fleet-{label}.jsonl"
        start = time.perf_counter()
        result = run_fleet(
            spec, seed=seed, log_path=log_path, fsync_every_n=fsync_every_n
        )
        timings[label] = time.perf_counter() - start
        return result, log_path.read_bytes()

    def both():
        per_append = logged_run(1, "per-append")
        batched = logged_run(32, "batched-32")
        return per_append, batched

    (result_1, log_1), (result_32, log_32) = run_once(benchmark, both)
    with capsys.disabled():
        print()
        print(
            f"fleet log fsync: per-append {timings['per-append']:.2f}s vs "
            f"fsync_every_n=32 {timings['batched-32']:.2f}s "
            f"({len(log_1):,} log bytes)"
        )
    assert log_1 == log_32
    assert result_1 == result_32
