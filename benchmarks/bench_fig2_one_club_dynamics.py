"""E4 — Figure 2: the missing piece syndrome / one-club growth rate.

Starting from a pure one-club state, the one club grows at rate ``Δ_{F−{1}}``
in the transient regime and drains in the stable regime.
"""

import pytest

from repro.experiments.one_club import run_one_club_experiment

from conftest import print_report, run_once


def test_one_club_growth_matches_delta(benchmark, capsys):
    result = run_once(
        benchmark,
        run_one_club_experiment,
        num_pieces=3,
        peer_rate=1.0,
        seed_departure_rate=2.0,
        unstable_arrival=3.0,
        unstable_seed_rate=0.5,
        stable_arrival=0.6,
        stable_seed_rate=0.5,
        initial_club_size=60,
        # The club drains at rate |Delta| = 0.4 in the stable regime, so give
        # it long enough to empty from 60 with stochastic slack.
        horizon=200.0,
        replications=2,
        seed=44,
        # 5x the object-simulator population cap at the same wall-clock.
        max_population=15_000,
        backend="array",
    )
    print_report(capsys, "E4  Figure 2: one-club dynamics", result.report())
    unstable, stable = result.runs
    # Paper prediction: club growth rate = Delta_{F-{1}} = lambda - Us/(1-mu/gamma) = +2.
    assert unstable.predicted_growth == pytest.approx(2.0)
    assert unstable.measured_growth == pytest.approx(2.0, rel=0.5)
    assert unstable.final_one_club > 60
    # Stable regime: the club drains and the system escapes the syndrome.
    assert stable.predicted_growth < 0
    assert stable.final_one_club < 30
    # The one-club fraction stays near one while trapped (transient regime).
    trapped_fractions = [frac for _t, frac in unstable.one_club_fraction_trajectory[5:]]
    assert min(trapped_fractions) > 0.7
