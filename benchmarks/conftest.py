"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures / worked examples (see
the per-experiment index in DESIGN.md), prints the paper-vs-measured table to
stdout, and records the wall-clock time of the experiment under
pytest-benchmark.  Experiments are run exactly once per benchmark
(``benchmark.pedantic(..., rounds=1, iterations=1)``) because a single run
already aggregates several stochastic replications.
"""

from __future__ import annotations

import pytest


def print_report(capsys, title: str, report: str) -> None:
    """Print an experiment report outside of pytest's capture."""
    with capsys.disabled():
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(report)
        print()


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
