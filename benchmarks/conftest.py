"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures / worked examples (see
the per-experiment index in DESIGN.md), prints the paper-vs-measured table to
stdout, and records the wall-clock time of the experiment under
pytest-benchmark.  Experiments are run exactly once per benchmark
(``benchmark.pedantic(..., rounds=1, iterations=1)``) because a single run
already aggregates several stochastic replications.

The harness also maintains the swarm-kernel throughput baseline: after any
benchmark session (and from ``python benchmarks/conftest.py`` directly), the
events-per-second of both simulation backends is measured on two workloads —
the reference homogeneous 10k-peer, ``K = 10`` one-club workload and a
scenario workload (heterogeneous fast/slow classes plus a flash-crowd
arrival pulse) exercising the scenario code path — plus an *overlay*
workload (the same one-club shape on a degree-8 tracker overlay, so the
adjacency-gather contact path of both backends sits under the gate) — plus
a *gossip* workload (the one-club shape with policies reading the
flow-updating gossip census, which disables the array kernel's cross-event
batching, so the scalar fallback path sits under the gate) — plus
the *fleet* workload: 200 swarms of 500 one-club peers each (100k peers total, mixed
plain/flash-crowd/free-rider scenario distribution) scheduled through
``repro.fleet`` on the array backend, recording the aggregate events/sec of
the whole fleet — once through the per-swarm path and once through the
stacked mega-kernel (``stacked=True``), whose records are bit-identical, so
both fleet execution paths sit under the CI bench gate — and once with
worker supervision switched on (``fleet.supervised``: ``max_retries=1``, no
injected faults, bit-identical records), so the supervision wrapper's
overhead is gated too — plus a small
*adaptive* boundary-mapping workload driven through the stacked path
(``fleet.stacked_adaptive``).  Each workload is timed a fixed number of
times (``BENCH_REPETITIONS``, 3; fleet workloads use
``FLEET_BENCH_REPETITIONS``, 5, because their repetition spread has been
the widest) and the *median* elapsed time is recorded, so one noisy
repetition cannot skew the committed baseline or trip the CI bench gate.  Everything is written to
``BENCH_swarm.json`` at the repository root, so future PRs can track the
performance trajectory of the object simulator, the array kernel and the
fleet layer side by side.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path

import pytest

#: Repetitions per throughput workload; the recorded ``events_per_second``
#: is the median, so a single timer hiccup cannot shift the committed
#: baseline (or trip the CI bench gate).
BENCH_REPETITIONS = 3

#: The fleet workloads get extra repetitions: their recorded repetitions
#: have spanned a 40% spread under machine noise (0.221-0.309 s for the
#: stacked path), enough for a median of 3 to drift close to the 30% gate
#: tolerance.  A median of 5 needs three bad timings out of five to move.
FLEET_BENCH_REPETITIONS = 5

#: The reference workload used for the BENCH_swarm.json baseline.
BENCH_WORKLOAD = {
    "num_pieces": 10,
    "initial_one_club": 10_000,
    "arrival_rate": 5.0,
    "seed_rate": 1.0,
    "peer_rate": 1.0,
    "seed_departure_rate": 2.0,
    "horizon": 5.0,
    "sample_interval": 0.025,
    "max_events": 20_000,
    "seed": 7,
}

#: The scenario workload of the baseline: two peer classes (a fast minority,
#: a slow majority) plus a flash-crowd arrival pulse, so both new kernel code
#: paths (per-class sampling and Poisson thinning) are on the hot path.
SCENARIO_BENCH_WORKLOAD = {
    "num_pieces": 10,
    "initial_one_club": 10_000,
    "arrival_rate": 5.0,
    "seed_rate": 1.0,
    "peer_rate": 1.0,
    "seed_departure_rate": 2.0,
    "fast_contact_rate": 2.0,
    "slow_contact_rate": 0.8,
    "fast_fraction": 0.3,
    "surge_start": 1.0,
    "surge_end": 3.0,
    "surge_factor": 4.0,
    "horizon": 5.0,
    "sample_interval": 0.025,
    "max_events": 20_000,
    "seed": 7,
}

#: The overlay workload of the baseline (``swarm.overlay``): the reference
#: one-club shape with contacts restricted to a degree-8 tracker overlay, so
#: the per-contact neighbor draw (object backend) and the adjacency gather in
#: the batch stage (array backend) are the hot path.
OVERLAY_BENCH_WORKLOAD = {
    "num_pieces": 10,
    "initial_one_club": 10_000,
    "arrival_rate": 5.0,
    "seed_rate": 1.0,
    "peer_rate": 1.0,
    "seed_departure_rate": 2.0,
    "topology": "tracker",
    "degree": 8,
    "horizon": 5.0,
    "sample_interval": 0.025,
    "max_events": 20_000,
    "seed": 7,
}

#: The gossip workload of the baseline (``swarm.gossip``): the reference
#: one-club shape with a flow-updating gossip census in front of the
#: policies.  Gossip consumes one extra uniform per peer tick and keeps the
#: array kernel on its scalar (non-batched) path, so this workload tracks
#: the estimator's bookkeeping plus the cost of losing the batch stage.
GOSSIP_BENCH_WORKLOAD = {
    "num_pieces": 10,
    "initial_one_club": 10_000,
    "arrival_rate": 5.0,
    "seed_rate": 1.0,
    "peer_rate": 1.0,
    "seed_departure_rate": 2.0,
    "exchange_rate": 0.35,
    "damping": 1.0,
    "horizon": 5.0,
    "sample_interval": 0.025,
    "max_events": 20_000,
    "seed": 7,
}

#: The fleet workload of the baseline: >= 200 swarms / >= 100k total peers
#: on the array backend, drawn through a mixed scenario distribution, run
#: serially through the fleet scheduler (serial keeps the measurement free
#: of pool-spawn noise; the aggregate events/sec is the fleet figure of
#: merit).
FLEET_BENCH_WORKLOAD = {
    "num_swarms": 200,
    "num_pieces": 10,
    "initial_one_club": 500,  # 200 x 500 = 100k peers in flight
    "arrival_rate": 5.0,
    "seed_rate": 1.0,
    "peer_rate": 1.0,
    "seed_departure_rate": 2.0,
    "horizon": 5.0,
    "sample_interval": 0.25,
    "max_events_per_swarm": 600,  # 120k events across the fleet
    "seed": 7,
}

#: The adaptive boundary-mapping workload (``fleet.stacked_adaptive``): a
#: small λ x U_s grid sampled by the budget-driven driver with every
#: round-chunk executed through the stacked mega-kernel — the many-short-
#: swarms shape the stacked path exists for.
ADAPTIVE_BENCH_WORKLOAD = {
    "arrival_rates": (0.5, 2.0, 4.0, 6.0),
    "seed_rates": (0.5, 1.0, 2.0),
    "num_pieces": 8,
    "swarm_budget": 96,
    "round_size": 24,
    "horizon": 4.0,
    "max_events_per_swarm": 600,
    "initial_one_club": 100,
    "seed": 7,
}

BENCH_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_swarm.json"

# Throughput results measured earlier in this session (e.g. by the kernel
# smoke benchmarks), reused by emit_bench_baseline so the recorded baseline
# matches the asserted numbers and the workloads are not simulated twice.
_session_measurements: dict = {}
_scenario_measurements: dict = {}
_overlay_measurements: dict = {}
_gossip_measurements: dict = {}
_fleet_measurements: dict = {}
_adaptive_measurements: dict = {}


def print_report(capsys, title: str, report: str) -> None:
    """Print an experiment report outside of pytest's capture."""
    with capsys.disabled():
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)
        print(report)
        print()


def run_once(benchmark, func, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)


def _measure_throughput(spec: dict, backend: str, scenario=None) -> dict:
    """Time repeated runs of ``spec``; record the median-rep measurement.

    The workload is simulated ``BENCH_REPETITIONS`` times (a fresh,
    identically seeded simulator each time, so every repetition produces the
    same trajectory) and the *median* elapsed time becomes the recorded
    figure — robust against one-off timer / scheduler noise.  ``spec`` must
    be stopped by its event cap (events/sec assumes the run was cut off at
    ``max_events``; a horizon-bound run would silently overstate the
    throughput).
    """
    from repro.core.parameters import SystemParameters
    from repro.core.state import SystemState
    from repro.swarm.swarm import make_simulator

    params = (
        scenario.params
        if scenario is not None
        else SystemParameters.flash_crowd(
            num_pieces=spec["num_pieces"],
            arrival_rate=spec["arrival_rate"],
            seed_rate=spec["seed_rate"],
            peer_rate=spec["peer_rate"],
            seed_departure_rate=spec["seed_departure_rate"],
        )
    )
    initial = SystemState.one_club(spec["num_pieces"], spec["initial_one_club"])
    timings = []
    result = None
    for _ in range(BENCH_REPETITIONS):
        simulator = make_simulator(
            params, seed=spec["seed"], backend=backend, scenario=scenario
        )
        start = time.perf_counter()
        result = simulator.run(
            spec["horizon"],
            initial_state=initial,
            sample_interval=spec["sample_interval"],
            max_events=spec["max_events"],
        )
        timings.append(time.perf_counter() - start)
        if result.horizon_reached:
            raise RuntimeError(
                "benchmark workload mis-sized: the run reached horizon "
                f"{spec['horizon']} before max_events={spec['max_events']}"
            )
    elapsed = statistics.median(timings)
    return {
        "backend": backend,
        "events": spec["max_events"],
        "elapsed_seconds": round(elapsed, 4),
        "events_per_second": round(spec["max_events"] / elapsed, 1),
        "repetitions": [round(t, 4) for t in timings],
        "final_population": result.final_population,
        "thinned_events": result.metrics.thinned_events,
    }


def measure_backend_throughput(backend: str) -> dict:
    """Events/second of one backend on the reference 10k-peer workload."""
    measurement = _measure_throughput(BENCH_WORKLOAD, backend)
    _session_measurements[backend] = measurement
    return measurement


def _scenario_bench_spec():
    """The ScenarioSpec of the scenario smoke workload."""
    from repro.core.parameters import SystemParameters
    from repro.core.scenario import PeerClass, RateSchedule, ScenarioSpec

    spec = SCENARIO_BENCH_WORKLOAD
    params = SystemParameters.flash_crowd(
        num_pieces=spec["num_pieces"],
        arrival_rate=spec["arrival_rate"],
        seed_rate=spec["seed_rate"],
        peer_rate=spec["peer_rate"],
        seed_departure_rate=spec["seed_departure_rate"],
    )
    gamma = spec["seed_departure_rate"]
    return ScenarioSpec(
        name="bench-hetero-flash-crowd",
        params=params,
        classes=(
            PeerClass(
                name="fast",
                contact_rate=spec["fast_contact_rate"],
                seed_departure_rate=gamma,
                arrival_fraction=spec["fast_fraction"],
            ),
            PeerClass(
                name="slow",
                contact_rate=spec["slow_contact_rate"],
                seed_departure_rate=gamma,
                arrival_fraction=1.0 - spec["fast_fraction"],
            ),
        ),
        arrival_schedule=RateSchedule.pulse(
            spec["surge_start"], spec["surge_end"], spec["surge_factor"]
        ),
    )


def measure_scenario_throughput(backend: str) -> dict:
    """Events/second of one backend on the scenario smoke workload."""
    measurement = _measure_throughput(
        SCENARIO_BENCH_WORKLOAD, backend, scenario=_scenario_bench_spec()
    )
    _scenario_measurements[backend] = measurement
    return measurement


def _overlay_bench_spec():
    """The ScenarioSpec of the overlay smoke workload."""
    from repro.core.scenario import make_scenario

    spec = OVERLAY_BENCH_WORKLOAD
    return make_scenario(
        "sparse-overlay",
        topology=spec["topology"],
        degree=spec["degree"],
        num_pieces=spec["num_pieces"],
        arrival_rate=spec["arrival_rate"],
        seed_rate=spec["seed_rate"],
        peer_rate=spec["peer_rate"],
        seed_departure_rate=spec["seed_departure_rate"],
    )


def measure_overlay_throughput(backend: str) -> dict:
    """Events/second of one backend on the tracker-overlay workload."""
    measurement = _measure_throughput(
        OVERLAY_BENCH_WORKLOAD, backend, scenario=_overlay_bench_spec()
    )
    _overlay_measurements[backend] = measurement
    return measurement


def _gossip_bench_spec():
    """The ScenarioSpec of the gossip-census smoke workload."""
    from repro.core.parameters import SystemParameters
    from repro.core.scenario import ScenarioSpec
    from repro.swarm.gossip import CensusSpec

    spec = GOSSIP_BENCH_WORKLOAD
    params = SystemParameters.flash_crowd(
        num_pieces=spec["num_pieces"],
        arrival_rate=spec["arrival_rate"],
        seed_rate=spec["seed_rate"],
        peer_rate=spec["peer_rate"],
        seed_departure_rate=spec["seed_departure_rate"],
    )
    return ScenarioSpec(
        name="bench-gossip",
        params=params,
        census=CensusSpec.gossip(
            exchange_rate=spec["exchange_rate"], damping=spec["damping"]
        ),
    )


def measure_gossip_throughput(backend: str) -> dict:
    """Events/second of one backend on the gossip-census workload."""
    measurement = _measure_throughput(
        GOSSIP_BENCH_WORKLOAD, backend, scenario=_gossip_bench_spec()
    )
    _gossip_measurements[backend] = measurement
    return measurement


def _fleet_bench_spec():
    """The FleetSpec of the fleet throughput workload."""
    from repro.fleet import FixedSampler, FleetSpec, ScenarioWeight

    spec = FLEET_BENCH_WORKLOAD
    return FleetSpec(
        name="bench-fleet",
        num_swarms=spec["num_swarms"],
        sampler=FixedSampler.of(
            num_pieces=spec["num_pieces"],
            arrival_rate=spec["arrival_rate"],
            seed_rate=spec["seed_rate"],
            peer_rate=spec["peer_rate"],
            seed_departure_rate=spec["seed_departure_rate"],
        ),
        scenario_mix=(
            ScenarioWeight.of(None, weight=2.0),
            ScenarioWeight.of(
                "flash-crowd", weight=1.0, surge_start=1.0, surge_end=3.0
            ),
            ScenarioWeight.of("free-rider", weight=1.0, leech_fraction=0.5),
        ),
        horizon=spec["horizon"],
        sample_interval=spec["sample_interval"],
        max_events=spec["max_events_per_swarm"],
        backend="array",
        initial_club_size=spec["initial_one_club"],
    )


def measure_fleet_throughput(workers=None, stacked=False, supervised=False) -> dict:
    """Aggregate events/second of the 200-swarm / 100k-peer fleet workload.

    Like the kernel workloads, the fleet is run a fixed number of times
    (``FLEET_BENCH_REPETITIONS``; deterministic, identical results) and the
    median elapsed time is recorded.  ``stacked=True`` runs every chunk
    through one ``StackedSwarmKernel`` — the records (and hence all
    non-timing fields) are bit-identical to the per-swarm path, only the
    clock differs.  ``supervised=True`` turns on worker supervision
    (``max_retries=1``) so the retry/bookkeeping wrapper of the supervised
    execution path sits under the gate; with no injected faults the result
    is again bit-identical, only the supervision overhead is measured.
    """
    from repro.fleet import run_fleet

    spec = FLEET_BENCH_WORKLOAD
    fleet_spec = _fleet_bench_spec()
    timings = []
    result = None
    for _ in range(FLEET_BENCH_REPETITIONS):
        start = time.perf_counter()
        result = run_fleet(
            fleet_spec,
            seed=spec["seed"],
            workers=workers,
            stacked=stacked,
            max_retries=1 if supervised else 0,
        )
        timings.append(time.perf_counter() - start)
    elapsed = statistics.median(timings)
    measurement = {
        "backend": "array",
        "stacked": stacked,
        "supervised": supervised,
        "num_swarms": spec["num_swarms"],
        "total_initial_peers": spec["num_swarms"] * spec["initial_one_club"],
        "workers": workers or 1,
        "events": result.total_events,
        "elapsed_seconds": round(elapsed, 4),
        "events_per_second": round(result.total_events / elapsed, 1),
        "repetitions": [round(t, 4) for t in timings],
        "one_club_prevalence": round(result.prevalence(), 4),
        "scenarios": {
            name: census.swarms for name, census in sorted(result.per_scenario.items())
        },
    }
    key = "supervised" if supervised else ("stacked" if stacked else "array")
    _fleet_measurements[key] = measurement
    return measurement


def _adaptive_bench_spec():
    """The AdaptiveFleetSpec of the stacked-adaptive throughput workload."""
    from repro.fleet.adaptive import AdaptiveFleetSpec

    spec = ADAPTIVE_BENCH_WORKLOAD
    return AdaptiveFleetSpec.of(
        "bench-adaptive",
        arrival_rates=spec["arrival_rates"],
        seed_rates=spec["seed_rates"],
        num_pieces=spec["num_pieces"],
        swarm_budget=spec["swarm_budget"],
        round_size=spec["round_size"],
        horizon=spec["horizon"],
        max_events=spec["max_events_per_swarm"],
        initial_club_size=spec["initial_one_club"],
    )


def measure_stacked_adaptive_throughput() -> dict:
    """Aggregate events/second of the adaptive driver on the stacked path.

    Same protocol as the fixed fleet workloads: ``FLEET_BENCH_REPETITIONS``
    deterministic repetitions, median elapsed time recorded.  The records —
    and hence the sampled-point trail and boundary estimate — are
    bit-identical to a ``stacked=False`` run, so this entry tracks only the
    stacked path's clock on the adaptive round shape.
    """
    from repro.fleet.adaptive import run_adaptive_fleet

    spec = ADAPTIVE_BENCH_WORKLOAD
    adaptive_spec = _adaptive_bench_spec()
    timings = []
    result = None
    for _ in range(FLEET_BENCH_REPETITIONS):
        start = time.perf_counter()
        result = run_adaptive_fleet(adaptive_spec, seed=spec["seed"], stacked=True)
        timings.append(time.perf_counter() - start)
    elapsed = statistics.median(timings)
    events = sum(record.events for record in result.fleet.records)
    measurement = {
        "backend": "array",
        "stacked": True,
        "swarms_sampled": len(result.fleet.records),
        "rounds": len(result.rounds),
        "stopped": result.stopped,
        "events": events,
        "elapsed_seconds": round(elapsed, 4),
        "events_per_second": round(events / elapsed, 1),
        "repetitions": [round(t, 4) for t in timings],
    }
    _adaptive_measurements["stacked"] = measurement
    return measurement


def emit_bench_baseline(path: Path = BENCH_OUTPUT) -> dict:
    """Write the BENCH_swarm.json baseline, measuring any backend/workload
    combination not already measured in this session."""
    backends = {
        backend: _session_measurements.get(backend)
        or measure_backend_throughput(backend)
        for backend in ("object", "array")
    }
    scenario_backends = {
        backend: _scenario_measurements.get(backend)
        or measure_scenario_throughput(backend)
        for backend in ("object", "array")
    }
    overlay_backends = {
        backend: _overlay_measurements.get(backend)
        or measure_overlay_throughput(backend)
        for backend in ("object", "array")
    }
    gossip_backends = {
        backend: _gossip_measurements.get(backend)
        or measure_gossip_throughput(backend)
        for backend in ("object", "array")
    }
    speedup = (
        backends["array"]["events_per_second"]
        / backends["object"]["events_per_second"]
    )
    scenario_speedup = (
        scenario_backends["array"]["events_per_second"]
        / scenario_backends["object"]["events_per_second"]
    )
    overlay_speedup = (
        overlay_backends["array"]["events_per_second"]
        / overlay_backends["object"]["events_per_second"]
    )
    gossip_speedup = (
        gossip_backends["array"]["events_per_second"]
        / gossip_backends["object"]["events_per_second"]
    )
    fleet = _fleet_measurements.get("array") or measure_fleet_throughput()
    fleet_stacked = _fleet_measurements.get("stacked") or measure_fleet_throughput(
        stacked=True
    )
    fleet_supervised = _fleet_measurements.get(
        "supervised"
    ) or measure_fleet_throughput(supervised=True)
    stacked_adaptive = (
        _adaptive_measurements.get("stacked") or measure_stacked_adaptive_throughput()
    )
    baseline = {
        "workload": dict(BENCH_WORKLOAD),
        "backends": backends,
        "array_speedup_over_object": round(speedup, 2),
        "scenario": {
            "workload": dict(SCENARIO_BENCH_WORKLOAD),
            "backends": scenario_backends,
            "array_speedup_over_object": round(scenario_speedup, 2),
        },
        "overlay": {
            "workload": dict(OVERLAY_BENCH_WORKLOAD),
            "backends": overlay_backends,
            "array_speedup_over_object": round(overlay_speedup, 2),
        },
        "gossip": {
            "workload": dict(GOSSIP_BENCH_WORKLOAD),
            "backends": gossip_backends,
            "array_speedup_over_object": round(gossip_speedup, 2),
        },
        "fleet": {
            "workload": dict(FLEET_BENCH_WORKLOAD),
            "array": fleet,
            "stacked": fleet_stacked,
            "stacked_speedup_over_per_swarm": round(
                fleet_stacked["events_per_second"] / fleet["events_per_second"], 2
            ),
            "supervised": fleet_supervised,
            "supervised_slowdown_over_unsupervised": round(
                fleet["events_per_second"]
                / fleet_supervised["events_per_second"],
                2,
            ),
            "stacked_adaptive": {
                "workload": {
                    key: list(value) if isinstance(value, tuple) else value
                    for key, value in ADAPTIVE_BENCH_WORKLOAD.items()
                },
                **stacked_adaptive,
            },
        },
        "python": platform.python_version(),
    }
    path.write_text(json.dumps(baseline, indent=2) + "\n")
    return baseline


def pytest_sessionfinish(session, exitstatus):
    """Refresh the swarm throughput baseline after a benchmark session."""
    if getattr(session.config.option, "collectonly", False):
        return
    bench_root = Path(__file__).resolve().parent
    items = getattr(session, "items", None) or []
    ran_benchmarks = any(
        bench_root in Path(str(item.fspath)).parents for item in items
    )
    if not ran_benchmarks or exitstatus != 0:
        return
    baseline = emit_bench_baseline()
    print(
        f"\nBENCH_swarm.json refreshed: array backend at "
        f"{baseline['backends']['array']['events_per_second']:,.0f} ev/s "
        f"({baseline['array_speedup_over_object']:.1f}x over object); "
        f"scenario workload at "
        f"{baseline['scenario']['backends']['array']['events_per_second']:,.0f} ev/s "
        f"({baseline['scenario']['array_speedup_over_object']:.1f}x); "
        f"overlay workload at "
        f"{baseline['overlay']['backends']['array']['events_per_second']:,.0f} ev/s "
        f"({baseline['overlay']['array_speedup_over_object']:.1f}x); "
        f"gossip workload at "
        f"{baseline['gossip']['backends']['array']['events_per_second']:,.0f} ev/s "
        f"({baseline['gossip']['array_speedup_over_object']:.1f}x); "
        f"fleet ({baseline['fleet']['array']['num_swarms']} swarms, "
        f"{baseline['fleet']['array']['total_initial_peers'] // 1000}k peers) at "
        f"{baseline['fleet']['array']['events_per_second']:,.0f} ev/s per-swarm, "
        f"{baseline['fleet']['stacked']['events_per_second']:,.0f} ev/s stacked "
        f"({baseline['fleet']['stacked_speedup_over_per_swarm']:.2f}x)"
    )


if __name__ == "__main__":
    print(json.dumps(emit_bench_baseline(), indent=2))
