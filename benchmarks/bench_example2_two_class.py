"""E2 — Figure 1(b) / Example 2: two arrival classes, boundary λ12 = 2 λ34."""

import pytest

from repro.experiments.example2 import run_example2
from repro.markov.classify import TrajectoryVerdict

from conftest import print_report, run_once


def test_example2_stability_boundary(benchmark, capsys):
    result = run_once(
        benchmark,
        run_example2,
        lambda_34=2.0,
        lambda_12_values=(0.5, 2.0, 3.0, 7.0),
        horizon=250.0,
        replications=2,
        seed=22,
        # 5x the object-simulator population cap at the same wall-clock.
        max_population=12_500,
        backend="array",
    )
    print_report(capsys, "E2  Example 2 (K=4): lambda_12 sweep at lambda_34 = 2", result.report())
    # Paper prediction: stable iff lambda_12 in (lambda_34/2, 2*lambda_34) = (1, 4).
    assert result.stable_interval == (1.0, 4.0)
    trials = result.sweep.trials
    # lambda_12 = 0.5 (below the lower boundary) and 7.0 (above the upper one)
    # are unstable; 2.0 (the symmetric point) is stable.
    assert trials[0].theory.is_unstable
    assert trials[1].theory.is_stable
    assert trials[1].empirical_verdict is not TrajectoryVerdict.UNSTABLE
    assert trials[3].empirical_verdict is TrajectoryVerdict.UNSTABLE
    assert result.sweep.agreement_fraction() >= 0.5
