"""Overlay smoke benchmark: both backends on the tracker-overlay workload.

Measures events/second of the object simulator and the array kernel on the
shared ``OVERLAY_BENCH_WORKLOAD`` (10 000 one-club peers, ``K = 10``,
contacts restricted to a degree-8 tracker overlay), asserting the topology
subsystem's invariants: the backends stay trajectory-identical from a
shared seed on the overlay path, and the array kernel's adjacency-gather
batch stage keeps a healthy speedup over the per-event object walk.  The
numbers land in the ``"overlay"`` section of ``BENCH_swarm.json`` via the
session-finish hook in ``conftest.py``, so overlay-path regressions are
visible per-PR next to the complete-graph baselines.
"""

from conftest import (
    OVERLAY_BENCH_WORKLOAD,
    measure_overlay_throughput,
    run_once,
)


def test_overlay_throughput_smoke(benchmark, capsys):
    object_run = measure_overlay_throughput("object")
    array_run = run_once(benchmark, measure_overlay_throughput, backend="array")
    speedup = array_run["events_per_second"] / object_run["events_per_second"]
    with capsys.disabled():
        print()
        print(
            f"overlay smoke ({OVERLAY_BENCH_WORKLOAD['initial_one_club']} "
            f"peers, K={OVERLAY_BENCH_WORKLOAD['num_pieces']}, "
            f"{OVERLAY_BENCH_WORKLOAD['topology']} overlay, "
            f"degree {OVERLAY_BENCH_WORKLOAD['degree']}): "
            f"object {object_run['events_per_second']:,.0f} ev/s, "
            f"array {array_run['events_per_second']:,.0f} ev/s "
            f"({speedup:.1f}x)"
        )
    # Trajectory equivalence holds on the overlay code path too.
    assert array_run["final_population"] == object_run["final_population"]
    # The overlay batch stage gathers targets from the adjacency matrix
    # instead of drawing uniforms over the population; it must still keep
    # the SoA kernel clearly ahead of the object simulator.
    assert speedup >= 3.0
