"""Scenario smoke benchmark: both backends on the heterogeneous flash crowd.

Measures events/second of the object simulator and the array kernel on the
shared ``SCENARIO_BENCH_WORKLOAD`` (10 000 one-club peers, ``K = 10``, two
peer classes plus a flash-crowd arrival pulse), asserting the invariants the
scenario refactor promises: the backends stay trajectory-identical from a
shared seed on the scenario path, the schedule actually thins events, and
the array kernel keeps a healthy speedup.  The numbers land in the
``"scenario"`` section of ``BENCH_swarm.json`` via the session-finish hook
in ``conftest.py``, so scenario-path regressions are visible per-PR next to
the homogeneous baseline.
"""

from conftest import (
    SCENARIO_BENCH_WORKLOAD,
    measure_scenario_throughput,
    run_once,
)


def test_scenario_throughput_smoke(benchmark, capsys):
    object_run = measure_scenario_throughput("object")
    array_run = run_once(benchmark, measure_scenario_throughput, backend="array")
    speedup = array_run["events_per_second"] / object_run["events_per_second"]
    with capsys.disabled():
        print()
        print(
            f"scenario smoke ({SCENARIO_BENCH_WORKLOAD['initial_one_club']} "
            f"peers, K={SCENARIO_BENCH_WORKLOAD['num_pieces']}, 2 classes + "
            f"flash crowd): "
            f"object {object_run['events_per_second']:,.0f} ev/s, "
            f"array {array_run['events_per_second']:,.0f} ev/s "
            f"({speedup:.1f}x)"
        )
    # Trajectory equivalence holds on the scenario code path too.
    assert array_run["final_population"] == object_run["final_population"]
    assert array_run["thinned_events"] == object_run["thinned_events"]
    # The pulse schedule must actually thin candidates, otherwise the
    # workload is not exercising the scenario path at all.
    assert array_run["thinned_events"] > 0
    # Same conservative bar as the homogeneous kernel smoke: the SoA kernel
    # must stay clearly ahead of the object simulator on scenarios.
    assert speedup >= 3.0
