"""E10 — appendix bounds: Kingman (Prop. 20) and the M/GI/∞ maximal bound (Lemma 21)."""

import pytest

from repro.experiments.queueing_exp import run_queueing_bounds_experiment

from conftest import print_report, run_once


def test_appendix_bounds_hold_empirically(benchmark, capsys):
    result = run_once(
        benchmark,
        run_queueing_bounds_experiment,
        horizon=200.0,
        num_paths=200,
        offsets=(20.0, 40.0),
        seed=1234,
    )
    print_report(capsys, "E10  Appendix probability bounds", result.report())
    # The empirical exceedance frequency never exceeds the bound (up to noise).
    assert result.all_bounds_hold()
    assert len(result.rows) == 4
    # Larger offsets give smaller bounds.
    kingman = [row for row in result.rows if "Kingman" in row.label]
    assert kingman[1].theoretical_bound <= kingman[0].theoretical_bound
