"""E5 — Figure 3: the µ = ∞ watched process (borderline, null recurrent)."""

import numpy as np
import pytest

from repro.experiments.mu_infinity_exp import run_mu_infinity_experiment
from repro.limits.mu_infinity import MuInfinityChain

from conftest import print_report, run_once


def test_mu_infinity_null_recurrence(benchmark, capsys):
    result = run_once(
        benchmark,
        run_mu_infinity_experiment,
        num_pieces=3,
        arrival_rate_per_piece=1.0,
        block_sizes=(50, 200, 800),
        seed=55,
    )
    print_report(capsys, "E5  Figure 3: mu = infinity watched process", result.report())
    # Paper prediction: the top layer is a zero-drift random walk.
    assert result.top_layer_drift == pytest.approx(0.0)
    # Null recurrence: excursion peaks are heavy-tailed — the largest peak over
    # 800 excursions dwarfs the typical one.
    assert result.running_max_peaks[-1] > 10 * max(result.running_mean_peaks[0], 1.0)

    # The enumerated outcome distribution of a top-layer state is a proper
    # distribution with zero mean population change (up to boundary effects).
    chain = MuInfinityChain(num_pieces=3, arrival_rate_per_piece=1.0)
    population = 50
    transitions = chain.transitions((population, 2))
    total_rate = sum(rate for rate, _ in transitions)
    assert total_rate == pytest.approx(chain.total_arrival_rate)
    mean_change = sum(rate * (target[0] - population) for rate, target in transitions)
    assert mean_change == pytest.approx(0.0, abs=1e-6)
