"""E7 — Theorem 14: the stability region does not depend on the piece-selection policy."""

import pytest

from repro.experiments.policy import run_policy_experiment

from conftest import print_report, run_once


def test_policy_insensitivity(benchmark, capsys):
    result = run_once(
        benchmark,
        run_policy_experiment,
        num_pieces=3,
        seed_rate=1.2,
        peer_rate=1.0,
        stable_arrival=0.7,
        unstable_arrival=2.8,
        policies=("random-useful", "rarest-first", "sequential"),
        horizon=220.0,
        replications=2,
        seed=77,
        # 5x the object-simulator population cap at the same wall-clock.
        max_population=12_500,
        backend="array",
    )
    print_report(capsys, "E7  Theorem 14: piece-selection policy insensitivity", result.report())
    # Paper prediction: every useful-piece policy has the same stability region.
    assert result.all_agree()
    stable_trial, unstable_trial = result.trials
    assert stable_trial.theory == "stable"
    assert unstable_trial.theory == "unstable"
    assert set(unstable_trial.verdicts.values()) <= {"unstable", "inconclusive"}
    assert "unstable" not in stable_trial.verdicts.values()
