"""Setup shim for legacy editable installs (``pip install -e . --no-use-pep517``).

The execution environment has no ``wheel`` package and no network access, so
PEP 660 editable installs (which build a wheel) are unavailable; this shim
lets ``setup.py develop`` handle ``pip install -e .`` instead.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
